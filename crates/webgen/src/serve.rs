//! The server side of the synthetic web: URL → content dispatch.
//!
//! Every URL the universe ever emits is served here, keyed on the
//! registerable domain and path. First-party structure is stable per
//! site (derived from the universe seed); advertising and identity
//! infrastructure rotates per visit (derived from the visit seed) —
//! reproducing the variance anatomy the paper measures.
//!
//! URL placeholder convention (materialized by the browser engine):
//! `{sid}` session id, `{uid}` user id, `{cb}` unique cache-buster.
//! Per-visit *path* components (creative ids, frame ids) are baked in
//! here from the visit seed, because the paper's normalization only
//! strips query *values* — rotating paths are what make nodes unique
//! across profiles (§5.1).

use crate::catalog;
use crate::content::{Condition, Content, Embed};
use crate::seed::{bounded, chance, stable_hash, SeedMixer};
use crate::universe::{RankBucket, ServerReply, SiteSpec, VisitCtx, WebUniverse};
use wmtree_net::{ResourceType, Status};
use wmtree_url::{psl, Url};

/// Site-level structural profile, derived once per (seed, site).
#[derive(Debug, Clone)]
pub struct SiteProfile {
    /// Number of theme stylesheets (1–2).
    pub n_css: usize,
    /// Above-the-fold images per page (4–10).
    pub n_images_above: usize,
    /// Below-the-fold (lazy) images per page (2–6).
    pub n_images_below: usize,
    /// First-party app bundle version.
    pub app_version: u32,
    /// Embeds an analytics tag.
    pub has_analytics: bool,
    /// Uses the secondary hit counter.
    pub has_statcounter: bool,
    /// Uses a tag manager.
    pub has_tagmanager: bool,
    /// Number of display ad slots (0–4).
    pub ad_slots: usize,
    /// Embeds a consent banner.
    pub has_consent: bool,
    /// Embeds a social widget.
    pub has_social: bool,
    /// Embeds a share-count widget.
    pub has_sharebar: bool,
    /// Embeds a video player.
    pub has_video: bool,
    /// Loads webfonts from the font CDN.
    pub has_webfonts: bool,
    /// Runs a fingerprinting script.
    pub has_fingerprinting: bool,
    /// Opens a live-content WebSocket.
    pub has_websocket: bool,
    /// Has a first-party recommendations API.
    pub has_api: bool,
    /// Number of JS library CDN includes (1–3).
    pub n_cdn_libs: usize,
}

impl SiteProfile {
    /// Derive the profile of a site. Popular sites are heavier (more
    /// ads, more services) — Appendix F finds larger trees at the top
    /// of the ranking.
    pub fn derive(seed: u64, site: &SiteSpec) -> SiteProfile {
        let h = |label: &str| {
            SeedMixer::new(seed)
                .with("siteprof")
                .with(&site.domain)
                .with(label)
                .finish()
        };
        let popularity = match site.bucket {
            RankBucket::Top5k => 1.0,
            RankBucket::To10k => 0.92,
            RankBucket::To50k => 0.86,
            RankBucket::To250k => 0.76,
            RankBucket::To500k => 0.66,
        };
        let ad_slots = {
            let base = bounded(h("ads"), 100) as f64 / 100.0;
            let slots = if base < 0.42 * (2.0 - popularity) {
                0
            } else if base < 0.55 {
                1
            } else if base < 0.80 {
                2
            } else if base < 0.93 {
                3
            } else {
                4
            };
            // Popular sites monetize more aggressively (Appendix F:
            // larger trees at the top of the ranking).
            if slots > 0 && popularity >= 0.9 {
                (slots + 1).min(4)
            } else {
                slots
            }
        };
        SiteProfile {
            n_css: 1 + bounded(h("css"), 2) as usize,
            n_images_above: 2 + (8.0 * popularity) as usize + bounded(h("imga"), 4) as usize,
            n_images_below: 1 + bounded(h("imgb"), 3) as usize,
            app_version: 1 + bounded(h("appv"), 9) as u32,
            has_analytics: chance(h("ga"), 0.88 * popularity),
            has_statcounter: chance(h("sc"), 0.3),
            has_tagmanager: chance(h("tm"), 0.52 * popularity),
            ad_slots,
            has_consent: chance(h("cmp"), 0.62),
            has_social: chance(h("soc"), 0.5 * popularity),
            has_sharebar: chance(h("shr"), 0.24 * popularity),
            has_video: chance(h("vid"), 0.2 * popularity),
            has_webfonts: chance(h("wf"), 0.7),
            has_fingerprinting: chance(h("fp"), 0.10),
            has_websocket: chance(h("ws"), 0.08),
            has_api: chance(h("api"), 0.7),
            n_cdn_libs: 1 + (2.0 * popularity) as usize + bounded(h("libs"), 2) as usize,
        }
    }
}

/// Serve a URL. Top-level dispatcher.
pub fn serve(universe: &WebUniverse, url: &Url, ctx: &VisitCtx) -> ServerReply {
    let site_domain = psl::etld_plus_one(url.host());
    if let Some(site) = universe.site(&site_domain) {
        return first_party(universe, site, url, ctx);
    }
    match site_domain.as_str() {
        "metricsphere.com" => metricsphere(url, ctx),
        "statcounter-pro.net" => statcounter(url),
        "analytics-relay.com" => analytics_relay(url, ctx),
        "tagrouter.com" => tagrouter(universe, url, ctx),
        "syndicate-ads.net" => syndicate_ads(universe, url, ctx),
        "rtb-exchange.net" => rtb_exchange(universe, url, ctx),
        "bidstream-x.com" => bidstream(url),
        "bannerfarm.biz" => bannerfarm(url),
        "popmedia-ads.com" => popmedia(universe, url, ctx),
        "pixel-trail.com" => pixel_trail(url, ctx),
        "beacon-hub.io" => beacon_hub(url, ctx),
        "sync-partners.net" => sync_partners(url, ctx),
        "usertrack-cdn.net" => usertrack(url, ctx),
        "fingerprint-lab.net" => fingerprint_lab(url),
        "socialverse.com" => socialverse(url),
        "sharebar.net" => sharebar(url),
        "cdn-fastedge.net" | "staticfiles-cdn.com" | "jslibs-cdn.net" => cdn(url),
        "fontlibrary.org" => fontlibrary(url),
        "consent-shield.com" => consent_shield(url),
        "streamvid-cdn.com" => streamvid(url, ctx),
        _ => not_found(),
    }
}

fn ok(content: Content) -> ServerReply {
    ServerReply {
        status: Status::OK,
        content,
    }
}

fn not_found() -> ServerReply {
    ServerReply {
        status: Status::NOT_FOUND,
        content: Content::leaf(512),
    }
}

// ---------------------------------------------------------------------
// First party
// ---------------------------------------------------------------------

fn first_party(universe: &WebUniverse, site: &SiteSpec, url: &Url, ctx: &VisitCtx) -> ServerReply {
    let seed = universe.config().seed;
    let profile = SiteProfile::derive(seed, site);
    let path = url.path();

    if path == "/" || path.starts_with("/page/") {
        return site_document(seed, site, &profile, url, ctx);
    }
    if path.starts_with("/assets/theme-") {
        return site_stylesheet(site, &profile, path);
    }
    if path.starts_with("/assets/app-legacy") {
        return site_app_script(seed, site, &profile, ctx, true);
    }
    if path.starts_with("/assets/app-v") {
        return site_app_script(seed, site, &profile, ctx, false);
    }
    if path.starts_with("/api/") {
        return site_api(seed, site, url, ctx);
    }
    if path.starts_with("/img/") || path.starts_with("/fonts/") || path.starts_with("/media/") {
        return ok(Content::leaf(
            4_096 + bounded(stable_hash(seed, path.as_bytes()), 60_000),
        ));
    }
    // Anything else on a first-party host: a small static page asset.
    if url.host().starts_with("cdn.") || url.host().starts_with("static.") {
        return ok(Content::leaf(2_048));
    }
    // Unknown first-party path: sites 404 sometimes.
    not_found()
}

/// The main HTML document of a page (landing page or `/page/N`).
fn site_document(
    seed: u64,
    site: &SiteSpec,
    profile: &SiteProfile,
    url: &Url,
    ctx: &VisitCtx,
) -> ServerReply {
    let d = &site.domain;
    let page_key = url.path().to_string();
    let ph = |label: &str| {
        SeedMixer::new(seed)
            .with("page")
            .with(d)
            .with(&page_key)
            .with(label)
            .finish()
    };
    let mut embeds: Vec<Embed> = Vec::new();

    // --- First-party assets -----------------------------------------
    for t in 0..profile.n_css {
        embeds.push(Embed::always(
            format!("https://cdn.{d}/assets/theme-{t}.css"),
            ResourceType::Stylesheet,
        ));
    }
    embeds.push(
        Embed::always(
            format!(
                "https://cdn.{d}/assets/app-v{}.js?sid={{sid}}",
                profile.app_version
            ),
            ResourceType::Script,
        )
        .when(Condition::MinVersion(90)),
    );
    embeds.push(
        Embed::always(
            format!("https://cdn.{d}/assets/app-legacy.js?sid={{sid}}"),
            ResourceType::Script,
        )
        .when(Condition::BelowVersion(90)),
    );
    // Above-the-fold images: stable per page.
    let n_above = profile.n_images_above + bounded(ph("extraimg"), 3) as usize;
    for i in 0..n_above {
        let mut e = Embed::always(
            format!(
                "https://static.{d}/img{}{i}.jpg",
                page_key.replace('/', "-")
            ),
            ResourceType::Image,
        );
        // A couple of slots are A/B-tested hero banners.
        if i < 2 && chance(ph("ab"), 0.35) {
            let variant = bounded(
                stable_hash(ctx.visit_seed, format!("ab{d}{page_key}{i}").as_bytes()),
                2,
            );
            e = Embed::always(
                format!(
                    "https://static.{d}/img{}{i}-hero.jpg?v={variant}",
                    page_key.replace('/', "-")
                ),
                ResourceType::Image,
            );
        }
        embeds.push(e);
    }
    // Below-the-fold images: lazy.
    for i in 0..profile.n_images_below {
        embeds.push(
            Embed::always(
                format!(
                    "https://static.{d}/img{}lazy{i}.jpg",
                    page_key.replace('/', "-")
                ),
                ResourceType::Image,
            )
            .when(Condition::RequiresInteraction),
        );
    }
    if profile.has_api {
        embeds.push(Embed::always(
            format!(
                "https://www.{d}/api/recs?page={}&sid={{sid}}",
                page_key.replace('/', "")
            ),
            ResourceType::Xhr,
        ));
    }
    if chance(ph("promo"), 0.2) {
        embeds.push(
            Embed::always(
                format!("https://static.{d}/media/promo.mp4"),
                ResourceType::Media,
            )
            .when(Condition::PerVisit(0.5)),
        );
    }

    // --- Third-party embeds ------------------------------------------
    for k in 0..profile.n_cdn_libs {
        let lib = ["jquery", "react", "lodash", "d3", "vue"][bounded(ph("lib"), 5) as usize % 5];
        embeds.push(Embed::always(
            format!("https://jslibs-cdn.net/npm/{lib}-{}.{k}.js", 3 + k),
            ResourceType::Script,
        ));
    }
    if profile.has_webfonts {
        embeds.push(Embed::always(
            format!(
                "https://fontlibrary.org/css2?family=family{}",
                bounded(ph("fam"), 12)
            ),
            ResourceType::Stylesheet,
        ));
    }
    if profile.has_analytics {
        embeds.push(Embed::always(
            "https://metricsphere.com/tag.js",
            ResourceType::Script,
        ));
    }
    if profile.has_statcounter {
        // Hit counters sample traffic: loaded on most, not all, visits.
        embeds.push(
            Embed::always(
                "https://statcounter-pro.net/counter.js",
                ResourceType::Script,
            )
            .when(Condition::PerVisit(0.9)),
        );
    }
    if profile.has_tagmanager {
        embeds.push(Embed::always(
            format!("https://tagrouter.com/route/{d}.js"),
            ResourceType::Script,
        ));
    }
    if profile.ad_slots > 0 {
        embeds.push(Embed::always(
            format!("https://syndicate-ads.net/adloader.js?s={d}"),
            ResourceType::Script,
        ));
    }
    // Consent banners only greet fresh visitors: once the consent
    // cookie exists (stateful crawling), the CMP is not loaded again.
    // Stateless crawling — the paper's choice — re-triggers it on every
    // page, which is exactly the "lower bound" effect Appendix C notes.
    if profile.has_consent && !ctx.returning_visitor {
        embeds.push(Embed::always(
            format!("https://consent-shield.com/cmp.js?s={d}"),
            ResourceType::Script,
        ));
    }
    if profile.has_social {
        embeds.push(
            Embed::always(
                format!("https://socialverse.com/plugins/like.html?u={d}{page_key}"),
                ResourceType::SubFrame,
            )
            .when(Condition::PerVisit(0.9)),
        );
    }
    if profile.has_sharebar {
        embeds.push(
            Embed::always("https://sharebar.net/widget.js", ResourceType::Script)
                .when(Condition::PerVisit(0.85)),
        );
    }
    if profile.has_video && chance(ph("vidpage"), 0.6) {
        embeds.push(Embed::always(
            format!(
                "https://streamvid-cdn.com/embed/v{}",
                bounded(ph("vid"), 500)
            ),
            ResourceType::SubFrame,
        ));
    }
    if profile.has_fingerprinting {
        embeds.push(Embed::always(
            "https://fingerprint-lab.net/fp.min.js",
            ResourceType::Script,
        ));
    }
    if profile.has_websocket {
        embeds.push(
            Embed::always(
                format!("wss://live.beacon-hub.io/socket?ch={d}"),
                ResourceType::WebSocket,
            )
            .when(Condition::PerVisit(0.8)),
        );
    }
    if profile.ad_slots > 1 {
        // Retargeting experiment tags rotate per visit and per campaign.
        let exp = bounded(
            stable_hash(ctx.visit_seed, format!("rtg{d}").as_bytes()),
            100_000,
        );
        embeds.push(
            Embed::always(
                format!("https://bidstream-x.com/tag/exp-{exp}.js"),
                ResourceType::Script,
            )
            .when(Condition::PerVisit(0.35)),
        );
    }

    // A slice of sites UA-sniff and set SameSite only for modern
    // browsers — the same cookie identity then carries different
    // security attributes across profiles (§5.2's 440 conflicts).
    let session_cookie = if chance(ph("ua-sniff"), 0.12) && ctx.browser_version >= 90 {
        format!("fp_session={{sid}}; Path=/; Domain={d}; SameSite=Lax")
    } else {
        format!("fp_session={{sid}}; Path=/; Domain={d}")
    };
    let mut set_cookies = vec![
        session_cookie,
        format!("fp_prefs=default; Path=/; Domain={d}; Max-Age=31536000"),
    ];
    // Experiment-assignment cookie: the experiment id in the *name*
    // rotates per visit on A/B-testing sites.
    if chance(ph("abc"), 0.5) {
        // Experiments rotate per visit within a site-scoped pool, so a
        // given experiment cookie is usually seen by only some profiles.
        let exp = bounded(
            stable_hash(ctx.visit_seed, format!("abexp{d}").as_bytes()),
            8,
        );
        set_cookies.push(format!("ab_exp_{exp}=on; Path=/; Domain={d}"));
    }
    ok(Content::Document {
        embeds,
        set_cookies,
    })
}

fn site_stylesheet(site: &SiteSpec, _profile: &SiteProfile, path: &str) -> ServerReply {
    let d = &site.domain;
    let t: u32 = path
        .trim_start_matches("/assets/theme-")
        .trim_end_matches(".css")
        .parse()
        .unwrap_or(0);
    let loads = vec![
        Embed::always(
            format!("https://cdn.{d}/fonts/brand-{t}.woff2"),
            ResourceType::Font,
        ),
        Embed::always(
            format!("https://static.{d}/img/bg-{t}.png"),
            ResourceType::Image,
        ),
    ];
    ok(Content::Stylesheet { loads })
}

fn site_app_script(
    seed: u64,
    site: &SiteSpec,
    _profile: &SiteProfile,
    _ctx: &VisitCtx,
    legacy: bool,
) -> ServerReply {
    let d = &site.domain;
    let h = |label: &str| {
        SeedMixer::new(seed)
            .with("appjs")
            .with(d)
            .with(label)
            .finish()
    };
    let mut actions = vec![Embed::always(
        format!("https://www.{d}/api/state?sid={{sid}}"),
        ResourceType::Xhr,
    )];
    if legacy {
        actions.push(Embed::always(
            "https://jslibs-cdn.net/npm/polyfill-es5.js",
            ResourceType::Script,
        ));
    }
    // Infinite scroll: more content after interaction.
    let n_scroll = 1 + bounded(h("scroll"), 3) as usize;
    for i in 0..n_scroll {
        actions.push(
            Embed::always(
                format!("https://static.{d}/img/scroll-{i}.jpg"),
                ResourceType::Image,
            )
            .when(Condition::RequiresInteraction),
        );
    }
    // Scroll-depth tracking pixel: only fires after interaction and
    // sets its own cookie.
    actions.push(
        Embed::always(
            "https://pixel-trail.com/track/pixel/scroll?cb={cb}",
            ResourceType::Image,
        )
        .when(Condition::RequiresInteraction),
    );
    // Rare CSP violation reports — the least stable node type (Table 4b).
    actions.push(
        Embed::always(
            "https://analytics-relay.com/csp-report?s={sid}",
            ResourceType::CspReport,
        )
        .when(Condition::PerVisit(0.06)),
    );
    ok(Content::Script {
        actions,
        set_cookies: vec![format!("fp_js=1; Path=/; Domain={d}")],
    })
}

fn site_api(seed: u64, site: &SiteSpec, url: &Url, ctx: &VisitCtx) -> ServerReply {
    let d = &site.domain;
    if url.path().starts_with("/api/recs") {
        let h = SeedMixer::new(seed)
            .with("api")
            .with(d)
            .with(url.path())
            .finish();
        let mut follow_ups = Vec::new();
        let n = 2 + bounded(h, 3) as usize;
        for i in 0..n {
            follow_ups.push(Embed::always(
                format!("https://static.{d}/img/rec-{i}.jpg"),
                ResourceType::Image,
            ));
        }
        // One rotating recommendation per visit.
        let rot = bounded(
            stable_hash(ctx.visit_seed, format!("rec{d}").as_bytes()),
            50,
        );
        follow_ups.push(
            Embed::always(
                format!("https://static.{d}/img/rec-rot-{rot}.jpg"),
                ResourceType::Image,
            )
            .when(Condition::PerVisit(0.15)),
        );
        return ok(Content::Api {
            follow_ups,
            set_cookies: vec![],
        });
    }
    ok(Content::Api {
        follow_ups: vec![],
        set_cookies: vec![],
    })
}

// ---------------------------------------------------------------------
// Analytics & tag management
// ---------------------------------------------------------------------

fn metricsphere(url: &Url, _ctx: &VisitCtx) -> ServerReply {
    match url.path() {
        "/tag.js" => ok(Content::Script {
            actions: vec![
                Embed::always("https://metricsphere.com/config?k={sid}", ResourceType::Xhr),
                Embed::always(
                    "https://metricsphere.com/collect/pv?sid={sid}",
                    ResourceType::Beacon,
                ),
                Embed::always(
                    "https://metricsphere.com/collect/engage?sid={sid}",
                    ResourceType::Beacon,
                )
                .when(Condition::RequiresInteraction),
                Embed::always(
                    "https://metricsphere.com/collect/ab?sid={sid}",
                    ResourceType::Beacon,
                )
                .when(Condition::PerVisit(0.2)),
                Embed::always(
                    "https://metricsphere.com/collect/timing?sid={sid}&cb={cb}",
                    ResourceType::Beacon,
                )
                .when(Condition::PerVisit(0.35)),
                // Consent adapter (also loaded by CMPs): raced between
                // loaders, so the node's parent differs across visits.
                Embed::always(
                    "https://jslibs-cdn.net/npm/consent-adapter.js",
                    ResourceType::Script,
                )
                .when(Condition::PerVisit(0.55)),
                Embed::always(
                    "https://jslibs-cdn.net/npm/analytics-shim.js",
                    ResourceType::Script,
                ),
            ],
            set_cookies: vec![],
        }),
        "/config" => ok(Content::Api {
            follow_ups: vec![],
            set_cookies: vec![],
        }),
        p if p.starts_with("/collect") => {
            let mut set_cookies =
                vec!["_ms_uid={uid}; Path=/; Secure; SameSite=None; Max-Age=7776000".to_string()];
            // Engagement events (fired only after interaction) carry an
            // additional engagement cookie — the NoAction profile never
            // receives it (§5.2: NoAction observes the fewest cookies).
            if url.path().contains("/engage") {
                set_cookies.push("_ms_engage={uid}; Path=/; Secure; SameSite=None".to_string());
            }
            ok(Content::Leaf {
                body_len: 43,
                set_cookies,
            })
        }
        _ => not_found(),
    }
}

fn statcounter(url: &Url) -> ServerReply {
    match url.path() {
        "/counter.js" => ok(Content::Script {
            actions: vec![
                Embed::always(
                    "https://statcounter-pro.net/px.gif?u={uid}",
                    ResourceType::Image,
                ),
                Embed::always(
                    "https://jslibs-cdn.net/npm/analytics-shim.js",
                    ResourceType::Script,
                ),
            ],
            set_cookies: vec![],
        }),
        "/px.gif" => ok(Content::Leaf {
            body_len: 43,
            set_cookies: vec!["sc_vid={uid}; Path=/; Max-Age=2592000".into()],
        }),
        _ => not_found(),
    }
}

fn analytics_relay(url: &Url, _ctx: &VisitCtx) -> ServerReply {
    match url.path() {
        "/relay.js" => ok(Content::Script {
            actions: vec![
                Embed::always(
                    "https://analytics-relay.com/collect?e=pv&sid={sid}",
                    ResourceType::Beacon,
                ),
                Embed::always(
                    "https://analytics-relay.com/csp-report?cb={cb}",
                    ResourceType::CspReport,
                )
                .when(Condition::PerVisit(0.12)),
            ],
            set_cookies: vec![],
        }),
        p if p.starts_with("/collect") || p.starts_with("/csp-report") => ok(Content::Leaf {
            body_len: 2,
            set_cookies: vec![],
        }),
        _ => not_found(),
    }
}

fn tagrouter(universe: &WebUniverse, url: &Url, ctx: &VisitCtx) -> ServerReply {
    if let Some(site_js) = url.path().strip_prefix("/route/") {
        let site_domain = site_js.trim_end_matches(".js");
        let seed = universe.config().seed;
        let h = |label: &str| {
            SeedMixer::new(seed)
                .with("tagrouter")
                .with(site_domain)
                .with(label)
                .finish()
        };
        let mut actions = Vec::new();
        // The tag manager may route the analytics tag even when the
        // page embeds it directly — the node's loader (and thus its
        // tree parent and depth) then races between the two, which is
        // the parent instability the paper measures for third parties.
        if chance(h("ms"), 0.5) {
            actions.push(Embed::always(
                "https://metricsphere.com/tag.js",
                ResourceType::Script,
            ));
        }
        if chance(h("relay"), 0.55) {
            actions.push(Embed::always(
                "https://analytics-relay.com/relay.js",
                ResourceType::Script,
            ));
        }
        if chance(h("pop"), 0.35) {
            actions.push(Embed::always(
                format!("https://popmedia-ads.com/ads/loader.js?s={site_domain}"),
                ResourceType::Script,
            ));
        }
        if chance(h("pt"), 0.3) {
            actions.push(Embed::always(
                "https://pixel-trail.com/track/pixel/common?cb={cb}",
                ResourceType::Image,
            ));
        }
        // An experiment tag rotating per visit: unique path per visit.
        let exp = bounded(stable_hash(ctx.visit_seed, b"tagrouter-exp"), 100_000);
        actions.push(
            Embed::always(
                format!("https://bidstream-x.com/tag/exp-{exp}.js"),
                ResourceType::Script,
            )
            .when(Condition::PerVisit(0.3)),
        );
        return ok(Content::Script {
            actions,
            set_cookies: vec![],
        });
    }
    not_found()
}

// ---------------------------------------------------------------------
// Advertising
// ---------------------------------------------------------------------

/// The embedding site threaded through ad URLs as the `s=` parameter
/// (query values are stripped by the analysis normalization, so this
/// does not split node identities).
fn ad_site(url: &Url) -> String {
    url.query_pairs()
        .find(|(k, _)| *k == "s")
        .map(|(_, v)| v.to_string())
        .unwrap_or_default()
}

/// Structural nesting gate: whether this site's ad slot chain continues
/// at this depth is a property of the *site's ad configuration*, stable
/// across visits and profiles — the paper's deep levels agree across
/// identical profiles (§4.4: Sim1/Sim2 deep similarity .75), so depth
/// must be driven by structure, with per-visit noise on top.
fn structural_nest(universe: &WebUniverse, site: &str, lane: &str, depth: u32) -> bool {
    let h = SeedMixer::new(universe.config().seed)
        .with("adnest")
        .with(site)
        .with(lane)
        .with_u64(depth as u64)
        .finish();
    chance(h, nest_probability(depth))
}

/// Recursion depth parsed from the `d=` query parameter of ad URLs.
fn ad_depth(url: &Url) -> u32 {
    url.query_pairs()
        .find(|(k, _)| *k == "d")
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or(0)
}

/// Probability that an ad frame nests another frame, decaying with
/// depth; zero beyond the hard cap so trees stay bounded (paper max
/// observed depth: 30).
fn nest_probability(depth: u32) -> f64 {
    match depth {
        0..=2 => 0.4,
        3..=5 => 0.33,
        6..=11 => 0.27,
        12..=24 => 0.16,
        25..=27 => 0.08,
        _ => 0.0,
    }
}

fn syndicate_ads(universe: &WebUniverse, url: &Url, ctx: &VisitCtx) -> ServerReply {
    let path = url.path();
    if path == "/adloader.js" {
        // Slot count is chosen by the embedding site; the loader fires
        // up to four slots with decreasing certainty. Slot documents
        // rotate per visit through the auction id in the path.
        // The auction id rotates per visit but lives in the query
        // string, so the paper's normalization collapses it — the slot
        // documents are stable nodes (most real ad URLs rotate in
        // parameters, not paths).
        let auction = bounded(stable_hash(ctx.visit_seed, b"auction"), 1_000_000);
        let s_param = ad_site(url);
        let mut actions = vec![
            Embed::always(
                format!(
                "https://syndicate-ads.net/adserve/slot0?a={auction}&sid={{sid}}&d=1&s={s_param}"
            ),
                ResourceType::SubFrame,
            )
            .when(Condition::PerVisit(0.92)),
            Embed::always(
                format!(
                "https://syndicate-ads.net/adserve/slot1?a={auction}&sid={{sid}}&d=1&s={s_param}"
            ),
                ResourceType::SubFrame,
            )
            .when(Condition::InteractionThenPerVisit(0.85)),
            Embed::always(
                format!(
                "https://syndicate-ads.net/adserve/slot2?a={auction}&sid={{sid}}&d=1&s={s_param}"
            ),
                ResourceType::SubFrame,
            )
            .when(Condition::InteractionThenPerVisit(0.6)),
            Embed::always(
                "https://pixel-trail.com/track/pixel/common?cb={cb}",
                ResourceType::Image,
            ),
        ];
        // Rare: bot-detecting campaigns skip headless browsers.
        actions.push(
            Embed::always(
                format!(
                "https://syndicate-ads.net/adserve/premium?a={auction}&sid={{sid}}&d=1&s={s_param}"
            ),
                ResourceType::SubFrame,
            )
            .when(Condition::NotHeadless),
        );
        return ok(Content::Script {
            actions,
            set_cookies: vec![],
        });
    }
    if path.starts_with("/adserve/") {
        let depth = ad_depth(url);
        let slot_h = stable_hash(ctx.visit_seed, path.as_bytes());
        let creative = bounded(slot_h, 100_000);
        let s_param = ad_site(url);
        let mut embeds = vec![
            Embed::always(
                format!("https://syndicate-ads.net/bid.js?cb={{cb}}&d={depth}&s={s_param}"),
                ResourceType::Script,
            ),
            // Creatives live on a generic CDN (not list-flagged), like
            // real ad images often do; the rotating id is a parameter,
            // so normalization collapses it into one stable node.
            Embed::always(
                format!(
                    "https://staticfiles-cdn.com/creatives/{}.jpg?id={creative}",
                    path.trim_start_matches("/adserve/")
                ),
                ResourceType::Image,
            ),
            Embed::always(
                "https://pixel-trail.com/track/pixel/imp?cb={cb}",
                ResourceType::Image,
            ),
            Embed::always(
                "https://staticfiles-cdn.com/creatives/house.jpg?id={cb}",
                ResourceType::Image,
            ),
            Embed::always(
                "https://staticfiles-cdn.com/badges/adchoices.png",
                ResourceType::Image,
            ),
        ];
        if chance(stable_hash(slot_h, b"ws"), 0.05) {
            embeds.push(Embed::always(
                "wss://live.beacon-hub.io/socket/ads?ch={cb}",
                ResourceType::WebSocket,
            ));
        }
        return ok(Content::Document {
            embeds,
            set_cookies: vec!["sa_imp={uid}; Path=/; Secure; SameSite=None".into()],
        });
    }
    if path == "/bid.js" {
        let depth = ad_depth(url);
        let s_param = ad_site(url);
        return ok(Content::Script {
            actions: vec![
                Embed::always(
                    format!("https://syndicate-ads.net/rtb/bid?cb={{cb}}&d={depth}&s={s_param}"),
                    ResourceType::Xhr,
                ),
                // A secondary demand partner is consulted on some visits.
                Embed::always(
                    format!("https://bidstream-x.com/rtb/bid?cb={{cb}}&d={depth}"),
                    ResourceType::Xhr,
                )
                .when(Condition::PerVisit(0.3)),
            ],
            set_cookies: vec![],
        });
    }
    if path == "/rtb/log" || path == "/rtb/settle" {
        return ok(Content::Leaf {
            body_len: 2,
            set_cookies: vec![],
        });
    }
    if path == "/rtb/bid" {
        let depth = ad_depth(url);
        let s_param = ad_site(url);
        let h = stable_hash(
            ctx.visit_seed,
            format!("rtbwin{depth}{}", url.as_str()).as_bytes(),
        );
        let nest = structural_nest(universe, &s_param, "syn", depth);
        // The auction winner rotates per visit, but whether the chain
        // can continue at all is the site's slot configuration.
        let winner = if nest {
            50 + bounded(h, 50)
        } else {
            bounded(h, 45)
        };
        let mut follow_ups = Vec::new();
        if winner < 25 {
            // Direct creative win via the house pool: rotates in the
            // query, so normalization collapses it into a stable node.
            let cr = bounded(stable_hash(h, b"cr"), 100_000);
            follow_ups.push(Embed::always(
                format!("https://bannerfarm.biz/creative/view.jpg?c={cr}"),
                ResourceType::Image,
            ));
        } else if winner < 37 {
            // Campaign creative with a per-campaign *path* — the source
            // of the unique nodes of §5.1.
            let cr = bounded(stable_hash(h, b"cr"), 100_000);
            follow_ups.push(Embed::always(
                format!("https://bannerfarm.biz/creative/{cr}.jpg"),
                ResourceType::Image,
            ));
        } else if winner < 45 {
            // Occasionally the slot simply stays with the house pool.
            follow_ups.push(Embed::always(
                format!(
                    "https://bannerfarm.biz/creative/view.jpg?c={}",
                    bounded(h, 100_000)
                ),
                ResourceType::Image,
            ));
        } else if winner < 80 {
            // Exchange takes over with a nested frame.
            let f = bounded(stable_hash(h, b"fr"), 100_000);
            let frame_url = if depth >= 3 || chance(stable_hash(h, b"frkind"), 0.85) {
                // The exchange's standard frame endpoint: the creative id
                // rides in the query, so the node is stable.
                format!(
                    "https://rtb-exchange.net/frame/std?f={f}&d={}&sid={{sid}}&s={s_param}",
                    depth + 1
                )
            } else {
                // Campaign-specific frame path (rotating, often unique).
                format!(
                    "https://rtb-exchange.net/frame/c{f}?d={}&sid={{sid}}&s={s_param}",
                    depth + 1
                )
            };
            follow_ups.push(
                Embed::always(frame_url, ResourceType::SubFrame).when(Condition::PerVisit(0.9)),
            );
            follow_ups.push(Embed::always(
                format!(
                    "https://staticfiles-cdn.com/creatives/fallback.jpg?id={}",
                    bounded(h, 40)
                ),
                ResourceType::Image,
            ));
        } else {
            // Second-tier network.
            follow_ups.push(
                Embed::always(
                    format!(
                        "https://popmedia-ads.com/ads/frame0?d={}&s={s_param}",
                        depth + 1
                    ),
                    ResourceType::SubFrame,
                )
                .when(Condition::PerVisit(0.9)),
            );
        }
        // Settlement beacon fires regardless of the auction winner —
        // the stable sibling the winner-specific nodes sit next to.
        follow_ups.push(Embed::always(
            format!("https://syndicate-ads.net/rtb/settle?cb={{cb}}&d={depth}"),
            ResourceType::Beacon,
        ));
        follow_ups.push(Embed::always(
            format!("https://syndicate-ads.net/rtb/log?cb={{cb}}&d={depth}"),
            ResourceType::Beacon,
        ));
        follow_ups.push(
            Embed::always(
                "https://sync-partners.net/cookie-sync?step=0&uid={uid}",
                ResourceType::Image,
            )
            .when(Condition::PerVisit(0.25)),
        );
        return ok(Content::Api {
            follow_ups,
            set_cookies: vec!["sa_bid={uid}; Path=/; Secure; SameSite=None".into()],
        });
    }
    not_found()
}

fn rtb_exchange(universe: &WebUniverse, url: &Url, ctx: &VisitCtx) -> ServerReply {
    let path = url.path();
    let depth = ad_depth(url);
    if path.starts_with("/frame/") {
        let s_param = ad_site(url);
        let h = stable_hash(ctx.visit_seed, path.as_bytes());
        let mut embeds = vec![
            Embed::always(
                format!("https://rtb-exchange.net/xchg.js?d={depth}&cb={{cb}}&s={s_param}"),
                ResourceType::Script,
            ),
            Embed::always(
                format!(
                    "https://staticfiles-cdn.com/creatives/x.jpg?id={}",
                    bounded(h, 100_000)
                ),
                ResourceType::Image,
            ),
            Embed::always(
                "https://pixel-trail.com/track/pixel/xchg?cb={cb}",
                ResourceType::Image,
            ),
            Embed::always(
                "https://staticfiles-cdn.com/badges/adchoices.png",
                ResourceType::Image,
            ),
            Embed::always(
                "https://pixel-trail.com/track/pixel/common?cb={cb}",
                ResourceType::Image,
            )
            .when(Condition::PerVisit(0.35)),
        ];
        // The chain continues when the slot's structural configuration
        // says so (stable across profiles), with mild per-visit noise.
        if structural_nest(universe, &s_param, "xchg", depth) {
            let f = bounded(stable_hash(h, b"next"), 100_000);
            let next_url = if depth >= 3 || chance(stable_hash(h, b"nkind"), 0.85) {
                format!(
                    "https://rtb-exchange.net/frame/std?f={f}&d={}&sid={{sid}}&s={s_param}",
                    depth + 1
                )
            } else {
                format!(
                    "https://rtb-exchange.net/frame/c{f}?d={}&sid={{sid}}&s={s_param}",
                    depth + 1
                )
            };
            embeds.push(
                Embed::always(next_url, ResourceType::SubFrame).when(Condition::PerVisit(0.9)),
            );
        }
        // Frame-scoped cookie: its *name* carries the frame id, so the
        // cookie identity itself rotates per visit (the §5.2 long tail
        // of cookies seen by only one profile).
        let pool = stable_hash(0xec, path.as_bytes()) % 24;
        let frame_cookie = format!("xchg_f{pool}={{uid}}; Path=/; Secure; SameSite=None");
        return ok(Content::Document {
            embeds,
            set_cookies: vec![
                "xchg_id={uid}; Path=/; Secure; SameSite=None".into(),
                frame_cookie,
            ],
        });
    }
    if path == "/xchg.js" {
        return ok(Content::Script {
            actions: vec![
                Embed::always(
                    format!("https://rtb-exchange.net/rtb/notify?d={depth}&cb={{cb}}"),
                    ResourceType::Beacon,
                ),
                Embed::always(
                    "https://sync-partners.net/cookie-sync?step=0&uid={uid}",
                    ResourceType::Image,
                )
                .when(Condition::PerVisit(0.15)),
            ],
            set_cookies: vec![],
        });
    }
    if path.starts_with("/rtb/") {
        return ok(Content::Leaf {
            body_len: 2,
            set_cookies: vec![],
        });
    }
    not_found()
}

fn bidstream(url: &Url) -> ServerReply {
    if url.path().starts_with("/tag/") {
        return ok(Content::Script {
            actions: vec![Embed::always(
                "https://bidstream-x.com/events?e=load&cb={cb}",
                ResourceType::Beacon,
            )],
            set_cookies: vec![],
        });
    }
    if url.path().starts_with("/events") {
        return ok(Content::Leaf {
            body_len: 2,
            set_cookies: vec![],
        });
    }
    if url.path().starts_with("/rtb/bid") {
        return ok(Content::Api {
            follow_ups: vec![Embed::always(
                "https://bidstream-x.com/events?e=bidwin&cb={cb}",
                ResourceType::Beacon,
            )],
            set_cookies: vec![],
        });
    }
    not_found()
}

fn bannerfarm(url: &Url) -> ServerReply {
    if url.path() == "/creative/view.jpg" {
        return ok(Content::Leaf {
            body_len: 24_000,
            set_cookies: vec!["bf_id={uid}; Path=/; Secure; SameSite=None; Max-Age=86400".into()],
        });
    }
    if let Some(cr) = url.path().strip_prefix("/creative/") {
        // Campaign-scoped cookie name: rotates per visit, so most of
        // these cookies are observed by a single profile only (§5.2).
        let pool = stable_hash(0xbf, cr.trim_end_matches(".jpg").as_bytes()) % 24;
        let campaign_cookie = format!("bf_c{pool}={{uid}}; Path=/; Secure; SameSite=None");
        return ok(Content::Leaf {
            body_len: 24_000,
            set_cookies: vec![
                "bf_id={uid}; Path=/; Secure; SameSite=None; Max-Age=86400".into(),
                campaign_cookie,
            ],
        });
    }
    not_found()
}

fn popmedia(universe: &WebUniverse, url: &Url, ctx: &VisitCtx) -> ServerReply {
    let path = url.path();
    let depth = ad_depth(url);
    if path == "/ads/loader.js" {
        let s_param = ad_site(url);
        return ok(Content::Script {
            actions: vec![
                Embed::always(
                    format!(
                        "https://popmedia-ads.com/ads/frame0?d={}&s={s_param}",
                        depth + 1
                    ),
                    ResourceType::SubFrame,
                )
                .when(Condition::PerVisit(0.8)),
                Embed::always(
                    "https://popmedia-ads.com/ads/banner/init?cb={cb}",
                    ResourceType::Beacon,
                ),
            ],
            set_cookies: vec![],
        });
    }
    if path.starts_with("/ads/frame") {
        let s_param = ad_site(url);
        let h = stable_hash(ctx.visit_seed, path.as_bytes());
        let mut embeds = vec![
            Embed::always(
                format!(
                    "https://staticfiles-cdn.com/creatives/p.jpg?id={}",
                    bounded(h, 100_000)
                ),
                ResourceType::Image,
            ),
            Embed::always(
                "https://popmedia-ads.com/ads/banner/imp?cb={cb}",
                ResourceType::Image,
            ),
            Embed::always(
                "https://staticfiles-cdn.com/badges/adchoices.png",
                ResourceType::Image,
            ),
        ];
        // Cross-network hop back into the exchange (structural).
        if structural_nest(universe, &s_param, "pop", depth) {
            embeds.push(
                Embed::always(
                    format!(
                        "https://rtb-exchange.net/frame/std?f={}&d={}&sid={{sid}}&s={s_param}",
                        bounded(stable_hash(h, b"x"), 100_000),
                        depth + 1
                    ),
                    ResourceType::SubFrame,
                )
                .when(Condition::PerVisit(0.9)),
            );
        }
        return ok(Content::Document {
            embeds,
            set_cookies: vec![],
        });
    }
    if path.starts_with("/ads/banner/") {
        return ok(Content::Leaf {
            body_len: 43,
            set_cookies: vec![],
        });
    }
    not_found()
}

// ---------------------------------------------------------------------
// Identity / tracking infrastructure
// ---------------------------------------------------------------------

fn pixel_trail(url: &Url, ctx: &VisitCtx) -> ServerReply {
    if url.path().starts_with("/track/pixel") {
        // UA sniffing: legacy browsers received `SameSite=None` cookies
        // without the attribute (pre-SameSite default), so the *same*
        // cookie identity carries different security attributes across
        // profiles — the paper's 440 attribute-conflict cookies (§5.2).
        let attrs = if ctx.browser_version < 90 {
            "Path=/; Secure; Max-Age=31536000"
        } else {
            "Path=/; Secure; SameSite=None; Max-Age=31536000"
        };
        let mut set_cookies = vec![format!("_pt={{uid}}; {attrs}")];
        if url.path().contains("/scroll") {
            set_cookies.push("_pt_scroll={uid}; Path=/; Secure; SameSite=None".to_string());
        }
        return ok(Content::Leaf {
            body_len: 43,
            set_cookies,
        });
    }
    not_found()
}

fn beacon_hub(url: &Url, ctx: &VisitCtx) -> ServerReply {
    if url.path() == "/socket" || url.path().starts_with("/socket/") {
        let h = stable_hash(ctx.visit_seed, b"ws-push");
        return ok(Content::WebSocket {
            pushes: vec![
                Embed::always(
                    format!(
                        "https://staticfiles-cdn.com/live/tile.jpg?id={}",
                        bounded(h, 100_000)
                    ),
                    ResourceType::Image,
                )
                .when(Condition::PerVisit(0.75)),
                Embed::always(
                    "https://beacon-hub.io/beacon?e=live&cb={cb}",
                    ResourceType::Beacon,
                )
                .when(Condition::PerVisit(0.2)),
            ],
        });
    }
    if url.path().starts_with("/beacon") {
        return ok(Content::Leaf {
            body_len: 2,
            set_cookies: vec![],
        });
    }
    not_found()
}

fn sync_partners(url: &Url, ctx: &VisitCtx) -> ServerReply {
    if url.path().starts_with("/cookie-sync") {
        let step: u32 = url
            .query_pairs()
            .find(|(k, _)| *k == "step")
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(0);
        // Chain length 1–3, decided per visit.
        let max_steps = 1 + bounded(stable_hash(ctx.visit_seed, b"synclen"), 3) as u32;
        let to = if step + 1 < max_steps {
            format!(
                "https://sync-partners.net/cookie-sync?step={}&uid={{uid}}",
                step + 1
            )
        } else {
            "https://usertrack-cdn.net/sync/receive?p=sp&uid={uid}".to_string()
        };
        return ServerReply {
            status: Status::FOUND,
            content: Content::Redirect {
                to,
                set_cookies: vec!["sp_sync={uid}; Path=/; Secure; SameSite=None".into()],
            },
        };
    }
    not_found()
}

fn usertrack(url: &Url, ctx: &VisitCtx) -> ServerReply {
    if url.path().starts_with("/sync/receive") {
        // Half the time the graph bounces one hop further.
        if chance(stable_hash(ctx.visit_seed, b"utbounce"), 0.5) {
            return ServerReply {
                status: Status::FOUND,
                content: Content::Redirect {
                    to: "https://pixel-trail.com/track/pixel/sync?cb={cb}".to_string(),
                    set_cookies: vec!["ut_id={uid}; Path=/; Secure; SameSite=None".into()],
                },
            };
        }
        return ok(Content::Leaf {
            body_len: 43,
            set_cookies: vec!["ut_id={uid}; Path=/; Secure; SameSite=None".into()],
        });
    }
    not_found()
}

fn fingerprint_lab(url: &Url) -> ServerReply {
    match url.path() {
        "/fp.min.js" => ok(Content::Script {
            actions: vec![
                Embed::always(
                    "https://fingerprint-lab.net/verify?sid={sid}",
                    ResourceType::Xhr,
                ),
                // Reported only from real (non-headless) browsers.
                Embed::always(
                    "https://fingerprint-lab.net/fp/report?cb={cb}",
                    ResourceType::Beacon,
                )
                .when(Condition::NotHeadless),
            ],
            set_cookies: vec![],
        }),
        p if p.starts_with("/verify") || p.starts_with("/fp/") => ok(Content::Leaf {
            body_len: 16,
            set_cookies: vec![],
        }),
        _ => not_found(),
    }
}

// ---------------------------------------------------------------------
// Social, consent, video, static infrastructure
// ---------------------------------------------------------------------

fn socialverse(url: &Url) -> ServerReply {
    let path = url.path();
    if path == "/plugins/like.html" {
        return ok(Content::Document {
            embeds: vec![
                Embed::always(
                    "https://socialverse.com/plugins/sdk.js",
                    ResourceType::Script,
                ),
                Embed::always(
                    "https://socialverse.com/plugins/style.css",
                    ResourceType::Stylesheet,
                ),
                Embed::always(
                    "https://jslibs-cdn.net/npm/widgets-core.js",
                    ResourceType::Script,
                ),
            ],
            set_cookies: vec!["sv_sess={sid}; Path=/; Secure; SameSite=None".into()],
        });
    }
    if path == "/plugins/sdk.js" {
        return ok(Content::Script {
            actions: vec![
                Embed::always(
                    "https://socialverse.com/plugins/count?u={sid}",
                    ResourceType::Xhr,
                ),
                Embed::always(
                    "https://socialverse.com/pixel?sid={sid}",
                    ResourceType::Image,
                )
                .when(Condition::PerVisit(0.9)),
            ],
            set_cookies: vec![],
        });
    }
    if path == "/plugins/style.css" {
        return ok(Content::Stylesheet {
            loads: vec![Embed::always(
                "https://socialverse.com/plugins/icons.woff2",
                ResourceType::Font,
            )],
        });
    }
    if path.starts_with("/plugins/count") || path.starts_with("/pixel") || path.ends_with(".woff2")
    {
        return ok(Content::leaf(1_024));
    }
    not_found()
}

fn sharebar(url: &Url) -> ServerReply {
    match url.path() {
        "/widget.js" => ok(Content::Script {
            actions: vec![
                Embed::always("https://sharebar.net/count?u={sid}", ResourceType::Xhr),
                // Widget runtime shared with other social embeds —
                // whichever loader wins the race becomes the parent.
                Embed::always(
                    "https://jslibs-cdn.net/npm/widgets-core.js",
                    ResourceType::Script,
                ),
            ],
            set_cookies: vec![],
        }),
        p if p.starts_with("/count") => ok(Content::Api {
            follow_ups: vec![],
            set_cookies: vec![],
        }),
        _ => not_found(),
    }
}

fn consent_shield(url: &Url) -> ServerReply {
    let path = url.path();
    if path == "/cmp.js" {
        return ok(Content::Script {
            actions: vec![
                Embed::always(
                    "https://consent-shield.com/cmp-frame?sid={sid}",
                    ResourceType::SubFrame,
                ),
                Embed::always(
                    "https://consent-shield.com/consent-status?sid={sid}",
                    ResourceType::Xhr,
                ),
                // Vendor-list adapter also pulled in by analytics tags —
                // whichever script runs first loads it (multi-parent).
                Embed::always(
                    "https://jslibs-cdn.net/npm/consent-adapter.js",
                    ResourceType::Script,
                ),
                // Consent-state relay shared with the tag-manager
                // ecosystem (raced at the same depth).
                Embed::always("https://analytics-relay.com/relay.js", ResourceType::Script)
                    .when(Condition::PerVisit(0.4)),
            ],
            set_cookies: vec!["cs_choice=pending; Path=/; SameSite=Lax".into()],
        });
    }
    if path == "/cmp-frame" {
        return ok(Content::Document {
            embeds: vec![
                Embed::always(
                    "https://consent-shield.com/cmp.css",
                    ResourceType::Stylesheet,
                ),
                Embed::always(
                    "https://consent-shield.com/img/shield.svg",
                    ResourceType::Image,
                ),
            ],
            set_cookies: vec![],
        });
    }
    if path == "/cmp.css" {
        return ok(Content::Stylesheet { loads: vec![] });
    }
    if path.starts_with("/consent-status") || path.starts_with("/img/") {
        return ok(Content::leaf(2_048));
    }
    not_found()
}

fn streamvid(url: &Url, ctx: &VisitCtx) -> ServerReply {
    let path = url.path();
    if let Some(vid) = path.strip_prefix("/embed/v") {
        let vid = vid.to_string();
        return ok(Content::Document {
            embeds: vec![
                Embed::always("https://streamvid-cdn.com/player.js", ResourceType::Script),
                Embed::always(
                    format!("https://streamvid-cdn.com/thumbs/{vid}.jpg"),
                    ResourceType::Image,
                ),
                Embed::always(
                    format!("https://streamvid-cdn.com/track/subtitles/{vid}.vtt"),
                    ResourceType::Other,
                ),
            ],
            set_cookies: vec![],
        });
    }
    if path == "/player.js" {
        let h = stable_hash(ctx.visit_seed, b"sv-play");
        return ok(Content::Script {
            actions: vec![
                Embed::always(
                    format!(
                        "https://streamvid-cdn.com/stream/s.mp4?v={}",
                        bounded(h, 10_000)
                    ),
                    ResourceType::Media,
                )
                .when(Condition::PerVisit(0.7)),
                Embed::always(
                    "https://beacon-hub.io/beacon?e=play&cb={cb}",
                    ResourceType::Beacon,
                )
                .when(Condition::PerVisit(0.65)),
            ],
            set_cookies: vec![],
        });
    }
    ok(Content::leaf(8_192))
}

fn cdn(url: &Url) -> ServerReply {
    let path = url.path();
    if path.ends_with(".js") {
        // Library scripts execute but load nothing further.
        return ok(Content::Script {
            actions: vec![],
            set_cookies: vec![],
        });
    }
    if path.ends_with(".css") {
        return ok(Content::Stylesheet { loads: vec![] });
    }
    ok(Content::leaf(16_384))
}

fn fontlibrary(url: &Url) -> ServerReply {
    if url.path().starts_with("/css2") {
        let family = url
            .query_pairs()
            .find(|(k, _)| *k == "family")
            .map(|(_, v)| v.to_string())
            .unwrap_or_else(|| "family0".to_string());
        return ok(Content::Stylesheet {
            loads: vec![
                Embed::always(
                    format!("https://fontlibrary.org/files/{family}-400.woff2"),
                    ResourceType::Font,
                ),
                Embed::always(
                    format!("https://fontlibrary.org/files/{family}-700.woff2"),
                    ResourceType::Font,
                ),
            ],
        });
    }
    ok(Content::leaf(48_000))
}

// Imports used only through full paths above.
#[allow(unused_imports)]
use catalog as _catalog_inventory;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::{UniverseConfig, WebUniverse};

    fn uni() -> WebUniverse {
        WebUniverse::generate(UniverseConfig {
            seed: 11,
            sites_per_bucket: [8, 4, 4, 4, 4],
            max_subpages: 12,
        })
    }

    fn u(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    #[test]
    fn landing_page_is_document_with_embeds() {
        let uni = uni();
        let site = &uni.sites()[0];
        let reply = uni.serve(&site.landing_url(), &VisitCtx::standard(1));
        assert!(reply.status.is_success());
        match reply.content {
            Content::Document {
                ref embeds,
                ref set_cookies,
            } => {
                assert!(
                    embeds.len() >= 10,
                    "page should embed many elements, got {}",
                    embeds.len()
                );
                assert!(!set_cookies.is_empty());
            }
            other => panic!("expected document, got {other:?}"),
        }
    }

    #[test]
    fn serve_is_deterministic_per_visit() {
        let uni = uni();
        let site = &uni.sites()[0];
        let ctx = VisitCtx::standard(77);
        let a = uni.serve(&site.landing_url(), &ctx);
        let b = uni.serve(&site.landing_url(), &ctx);
        assert_eq!(a, b);
    }

    #[test]
    fn ad_rotation_varies_per_visit() {
        let uni = uni();
        // The adloader emits a per-visit auction path.
        let url = u("https://syndicate-ads.net/adloader.js?s=x.com");
        let a = uni.serve(&url, &VisitCtx::standard(1));
        let b = uni.serve(&url, &VisitCtx::standard(2));
        assert_ne!(a, b, "auction ids must rotate per visit");
    }

    #[test]
    fn site_structure_stable_across_profiles() {
        let uni = uni();
        let site = &uni.sites()[0];
        // Same visit seed, different browser flags: the *served document*
        // is identical; conditions are applied by the browser.
        let a = uni.serve(
            &site.landing_url(),
            &VisitCtx {
                visit_seed: 5,
                browser_version: 95,
                interaction: true,
                headless: false,
                returning_visitor: false,
            },
        );
        let b = uni.serve(
            &site.landing_url(),
            &VisitCtx {
                visit_seed: 5,
                browser_version: 86,
                interaction: false,
                headless: true,
                returning_visitor: false,
            },
        );
        assert_eq!(a, b);
    }

    #[test]
    fn unknown_host_is_404() {
        let uni = uni();
        let reply = uni.serve(
            &u("https://not-a-real-host.example/x"),
            &VisitCtx::standard(1),
        );
        assert_eq!(reply.status, Status::NOT_FOUND);
    }

    #[test]
    fn ad_chain_depth_capped() {
        assert!(nest_probability(0) >= 0.4);
        assert!(nest_probability(10) > 0.0);
        assert_eq!(nest_probability(28), 0.0);
        assert_eq!(nest_probability(100), 0.0);
    }

    #[test]
    fn site_param_threads_through_ad_chain() {
        // The s= parameter set by the document's adloader embed must
        // survive into slot frames, bid scripts, and RTB calls so the
        // structural-nesting gate can key on the site.
        let uni = uni();
        let ctx = VisitCtx::standard(4);
        let loader = uni.serve(
            &u("https://syndicate-ads.net/adloader.js?s=my-site.com"),
            &ctx,
        );
        let slot_url = loader
            .content
            .embeds()
            .iter()
            .find(|e| e.url.contains("/adserve/slot0"))
            .expect("slot0 embed")
            .url
            .replace("{sid}", "x");
        assert!(slot_url.contains("s=my-site.com"), "{slot_url}");
        let slot = uni.serve(&u(&slot_url), &ctx);
        let bid_url = slot
            .content
            .embeds()
            .iter()
            .find(|e| e.url.contains("bid.js"))
            .expect("bid.js embed")
            .url
            .replace("{cb}", "1");
        assert!(bid_url.contains("s=my-site.com"), "{bid_url}");
    }

    #[test]
    fn structural_nesting_is_site_stable() {
        // The nesting decision for a given (site, lane, depth) must not
        // depend on the visit at all.
        let uni = uni();
        for depth in 0..6 {
            let a = structural_nest(&uni, "site-a.com", "syn", depth);
            let b = structural_nest(&uni, "site-a.com", "syn", depth);
            assert_eq!(a, b);
        }
        // And different sites get different configurations somewhere.
        let diverse = (0..40).any(|i| {
            structural_nest(&uni, &format!("site-{i}.com"), "syn", 1)
                != structural_nest(&uni, &format!("site-{}.com", i + 100), "syn", 1)
        });
        assert!(diverse);
    }

    #[test]
    fn ua_sniffed_cookie_attributes_differ_by_version() {
        let uni = uni();
        let px = u("https://pixel-trail.com/track/pixel/imp?cb=1");
        let old = VisitCtx {
            browser_version: 86,
            ..VisitCtx::standard(1)
        };
        let new = VisitCtx::standard(1);
        let c_old = uni.serve(&px, &old).content.set_cookies()[0].clone();
        let c_new = uni.serve(&px, &new).content.set_cookies()[0].clone();
        assert!(!c_old.contains("SameSite"), "{c_old}");
        assert!(c_new.contains("SameSite=None"), "{c_new}");
    }

    #[test]
    fn sync_chain_redirects_then_terminates() {
        let uni = uni();
        let ctx = VisitCtx::standard(3);
        let mut url = u("https://sync-partners.net/cookie-sync?step=0&uid=abc");
        let mut hops = 0;
        loop {
            let reply = uni.serve(&url, &ctx);
            match reply.content {
                Content::Redirect { to, .. } => {
                    hops += 1;
                    assert!(hops < 10, "sync chain must terminate");
                    url = u(&to.replace("{uid}", "abc").replace("{cb}", "1"));
                }
                Content::Leaf { .. } => break,
                other => panic!("unexpected sync content {other:?}"),
            }
        }
        assert!(hops >= 1);
    }

    #[test]
    fn csp_reports_are_rare_and_conditional() {
        let uni = uni();
        let site = &uni.sites()[0];
        let profile = SiteProfile::derive(uni.config().seed, site);
        let url = u(&format!(
            "https://cdn.{}/assets/app-v{}.js?sid=x",
            site.domain, profile.app_version
        ));
        let reply = uni.serve(&url, &VisitCtx::standard(1));
        let actions = reply.content.embeds();
        let csp: Vec<_> = actions
            .iter()
            .filter(|e| e.resource_type == ResourceType::CspReport)
            .collect();
        assert_eq!(csp.len(), 1);
        assert!(matches!(csp[0].condition, Condition::PerVisit(p) if p < 0.2));
    }

    #[test]
    fn lazy_images_require_interaction() {
        let uni = uni();
        let site = &uni.sites()[0];
        let reply = uni.serve(&site.landing_url(), &VisitCtx::standard(1));
        let lazy = reply
            .content
            .embeds()
            .iter()
            .filter(|e| e.condition == Condition::RequiresInteraction)
            .count();
        assert!(lazy >= 2, "pages must have lazy content, got {lazy}");
    }

    #[test]
    fn legacy_and_modern_bundles_are_version_gated() {
        let uni = uni();
        let site = &uni.sites()[0];
        let reply = uni.serve(&site.landing_url(), &VisitCtx::standard(1));
        let embeds = reply.content.embeds();
        assert!(embeds
            .iter()
            .any(|e| matches!(e.condition, Condition::MinVersion(_))));
        assert!(embeds
            .iter()
            .any(|e| matches!(e.condition, Condition::BelowVersion(_))));
    }

    #[test]
    fn every_service_domain_serves_something() {
        // Smoke-check the canonical endpoint of each service.
        let uni = uni();
        let ctx = VisitCtx::standard(9);
        let endpoints = [
            "https://metricsphere.com/tag.js",
            "https://statcounter-pro.net/counter.js",
            "https://analytics-relay.com/relay.js",
            "https://tagrouter.com/route/some-site.com.js",
            "https://syndicate-ads.net/adloader.js",
            "https://rtb-exchange.net/frame/f1?d=2",
            "https://bidstream-x.com/tag/exp-5.js",
            "https://bannerfarm.biz/creative/7.jpg",
            "https://popmedia-ads.com/ads/loader.js",
            "https://pixel-trail.com/track/pixel?cb=1",
            "wss://live.beacon-hub.io/socket?ch=x",
            "https://sync-partners.net/cookie-sync?step=0&uid=a",
            "https://usertrack-cdn.net/sync/receive?p=sp&uid=a",
            "https://fingerprint-lab.net/fp.min.js",
            "https://socialverse.com/plugins/like.html?u=x",
            "https://sharebar.net/widget.js",
            "https://cdn-fastedge.net/lib/jquery.js",
            "https://staticfiles-cdn.com/creatives/c1.jpg",
            "https://jslibs-cdn.net/npm/react-17.js",
            "https://fontlibrary.org/css2?family=family3",
            "https://consent-shield.com/cmp.js?s=x",
            "https://streamvid-cdn.com/embed/v7",
        ];
        for e in endpoints {
            let reply = uni.serve(&u(e), &ctx);
            assert!(
                reply.status.is_success() || reply.status.is_redirect(),
                "{e} returned {}",
                reply.status
            );
        }
    }
}
