//! Deterministic synthetic web universe.
//!
//! The IMC'23 paper crawls the live Web. A Rust reproduction cannot
//! (and a reproducible one *should not*) — so this crate builds the
//! closest synthetic equivalent: a **universe** of rank-listed sites
//! whose pages embed first-party assets and a realistic third-party
//! ecosystem (analytics, tag managers, ad networks with header-bidding
//! chains, social widgets, consent managers, CDNs, cookie syncing).
//!
//! The universe is *deterministic in structure* — which services a site
//! embeds derives from the universe seed, so every crawler profile sees
//! the same site — while *per-visit nondeterminism* (ad rotation, A/B
//! tests, session identifiers, lazy loading) derives from a per-visit
//! seed, exactly the variance sources the paper identifies:
//!
//! * ad chains rotate per visit and reach deep tree levels (§4.1/§4.2),
//! * session IDs appear as query values (§3.2's URL normalization),
//! * lazily loaded content requires user interaction (§4.4, NoAction),
//! * some behaviour is gated on browser version or headless mode (§4.4),
//! * cookie-sync redirect chains vary per visit (§4.1).
//!
//! The core entry point is [`WebUniverse::serve`]: given a URL and a
//! [`VisitCtx`], it returns what the "server" responds — a document with
//! embedded elements, a script with actions, a redirect, a leaf asset —
//! which the `wmtree-browser` engine then walks like a rendering engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod content;
pub mod inventory;
mod seed;
pub mod serve;
pub mod tranco;
mod universe;

pub use content::{Condition, Content, Embed, SpawnSpec};
pub use seed::{stable_hash, SeedMixer};
pub use universe::{RankBucket, SiteSpec, UniverseConfig, VisitCtx, WebUniverse};
