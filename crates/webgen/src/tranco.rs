//! Tranco-like ranked site list and the paper's bucket sampling.
//!
//! The paper samples 25k sites from the Tranco list: the full top 5k and
//! 5k random sites from each of the buckets 5,001–10k, 10,001–50k,
//! 50,001–250k, and 250,001–500k (§3.1.2). This module generates a
//! deterministic ranked universe of domains and reproduces that
//! sampling scheme at configurable scale.

use crate::seed::{bounded, stable_hash, SeedMixer};
use serde::{Deserialize, Serialize};

/// The paper's five rank buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RankBucket {
    /// Ranks 1–5,000.
    Top5k,
    /// Ranks 5,001–10,000.
    To10k,
    /// Ranks 10,001–50,000.
    To50k,
    /// Ranks 50,001–250,000.
    To250k,
    /// Ranks 250,001–500,000.
    To500k,
}

impl RankBucket {
    /// All buckets in rank order.
    pub const ALL: [RankBucket; 5] = [
        RankBucket::Top5k,
        RankBucket::To10k,
        RankBucket::To50k,
        RankBucket::To250k,
        RankBucket::To500k,
    ];

    /// Inclusive rank range of the bucket.
    pub fn range(self) -> (u32, u32) {
        match self {
            RankBucket::Top5k => (1, 5_000),
            RankBucket::To10k => (5_001, 10_000),
            RankBucket::To50k => (10_001, 50_000),
            RankBucket::To250k => (50_001, 250_000),
            RankBucket::To500k => (250_001, 500_000),
        }
    }

    /// The bucket a rank falls into (ranks beyond 500k map to the last
    /// bucket).
    pub fn of_rank(rank: u32) -> RankBucket {
        match rank {
            0..=5_000 => RankBucket::Top5k,
            5_001..=10_000 => RankBucket::To10k,
            10_001..=50_000 => RankBucket::To50k,
            50_001..=250_000 => RankBucket::To250k,
            _ => RankBucket::To500k,
        }
    }

    /// Label as printed in Table 7.
    pub fn label(self) -> &'static str {
        match self {
            RankBucket::Top5k => "1-5k",
            RankBucket::To10k => "5,001-10k",
            RankBucket::To50k => "10,001-50k",
            RankBucket::To250k => "50,001-250k",
            RankBucket::To500k => "250,001-500k",
        }
    }
}

impl std::fmt::Display for RankBucket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

const PREFIXES: [&str; 20] = [
    "news", "shop", "blog", "tech", "media", "portal", "game", "travel", "bank", "health", "sport",
    "cloud", "music", "food", "auto", "learn", "wiki", "forum", "photo", "video",
];

const TLDS: [&str; 8] = ["com", "net", "org", "de", "co.uk", "io", "fr", "nl"];

/// The registerable domain at a given rank of the synthetic list.
/// Deterministic in `(seed, rank)`.
pub fn domain_at_rank(seed: u64, rank: u32) -> String {
    let h = SeedMixer::new(seed)
        .with("tranco")
        .with_u64(rank as u64)
        .finish();
    let prefix = PREFIXES[bounded(h, PREFIXES.len() as u64) as usize];
    let tld = TLDS[bounded(stable_hash(h, b"tld"), TLDS.len() as u64) as usize];
    format!("{prefix}-{rank}.{tld}")
}

/// Sample `per_bucket[i]` distinct ranks from each bucket: the full top
/// of the first bucket (the paper takes the top 5k wholesale) and
/// hash-scattered ranks from the others. Output is sorted by rank.
pub fn sample_ranks(seed: u64, per_bucket: &[usize; 5]) -> Vec<u32> {
    let mut out = Vec::new();
    for (i, bucket) in RankBucket::ALL.iter().enumerate() {
        let want = per_bucket[i];
        if want == 0 {
            continue;
        }
        let (lo, hi) = bucket.range();
        let span = (hi - lo + 1) as usize;
        let want = want.min(span);
        if *bucket == RankBucket::Top5k {
            // Top of the list is taken wholesale.
            out.extend(lo..lo + want as u32);
        } else {
            // Evenly strided with per-slot hash jitter: distinct,
            // deterministic, spread over the bucket.
            let stride = span / want;
            for k in 0..want {
                let base = lo as usize + k * stride;
                let jitter = bounded(
                    SeedMixer::new(seed)
                        .with("rankjit")
                        .with_u64(base as u64)
                        .finish(),
                    stride.max(1) as u64,
                ) as usize;
                out.push((base + jitter).min(hi as usize) as u32);
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_ranges_partition() {
        assert_eq!(RankBucket::of_rank(1), RankBucket::Top5k);
        assert_eq!(RankBucket::of_rank(5_000), RankBucket::Top5k);
        assert_eq!(RankBucket::of_rank(5_001), RankBucket::To10k);
        assert_eq!(RankBucket::of_rank(50_000), RankBucket::To50k);
        assert_eq!(RankBucket::of_rank(250_001), RankBucket::To500k);
        assert_eq!(RankBucket::of_rank(9_999_999), RankBucket::To500k);
    }

    #[test]
    fn domains_deterministic_and_distinct() {
        assert_eq!(domain_at_rank(1, 42), domain_at_rank(1, 42));
        assert_ne!(domain_at_rank(1, 42), domain_at_rank(1, 43));
        assert_ne!(domain_at_rank(1, 42), domain_at_rank(2, 42));
        // Rank embedded in the domain guarantees uniqueness.
        assert!(domain_at_rank(1, 42).contains("42"));
    }

    #[test]
    fn domains_have_known_tlds() {
        for rank in 1..50 {
            let d = domain_at_rank(9, rank);
            assert!(TLDS.iter().any(|t| d.ends_with(t)), "{d}");
        }
    }

    #[test]
    fn sampling_counts_and_membership() {
        let ranks = sample_ranks(7, &[100, 50, 50, 50, 50]);
        assert_eq!(ranks.len(), 300);
        let counts: Vec<usize> = RankBucket::ALL
            .iter()
            .map(|b| {
                let (lo, hi) = b.range();
                ranks.iter().filter(|r| (lo..=hi).contains(*r)).count()
            })
            .collect();
        assert_eq!(counts, vec![100, 50, 50, 50, 50]);
        // Top bucket taken wholesale from the top.
        assert_eq!(&ranks[..3], &[1, 2, 3]);
    }

    #[test]
    fn sampling_is_deterministic() {
        assert_eq!(
            sample_ranks(7, &[10, 10, 10, 10, 10]),
            sample_ranks(7, &[10, 10, 10, 10, 10])
        );
    }

    #[test]
    fn sampling_caps_at_bucket_size() {
        let ranks = sample_ranks(7, &[6000, 0, 0, 0, 0]);
        assert_eq!(ranks.len(), 5000);
    }

    #[test]
    fn bucket_labels() {
        assert_eq!(RankBucket::Top5k.label(), "1-5k");
        assert_eq!(RankBucket::To500k.to_string(), "250,001-500k");
    }
}
