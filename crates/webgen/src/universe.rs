//! The web universe: configuration, site inventory, and visit context.

use crate::content::Content;
use crate::seed::SeedMixer;
use crate::tranco;
pub use crate::tranco::RankBucket;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use wmtree_net::Status;
use wmtree_url::Url;

/// Configuration of a universe.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UniverseConfig {
    /// Root seed — every structural property derives from it.
    pub seed: u64,
    /// How many sites to sample from each rank bucket (the paper uses
    /// `[5000; 5]`; the default experiment scales this down).
    pub sites_per_bucket: [usize; 5],
    /// Maximum subpages collected per site (paper: 25).
    pub max_subpages: usize,
}

impl Default for UniverseConfig {
    fn default() -> Self {
        UniverseConfig {
            seed: 0x5eed_cafe,
            sites_per_bucket: [100, 100, 100, 100, 100],
            max_subpages: 25,
        }
    }
}

/// A site in the universe.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiteSpec {
    /// Registerable domain (eTLD+1).
    pub domain: String,
    /// Tranco-style rank.
    pub rank: u32,
    /// Rank bucket.
    pub bucket: RankBucket,
    /// Number of distinct subpages the site has (landing page excluded).
    pub n_subpages: usize,
}

impl SiteSpec {
    /// The landing-page URL of this site.
    pub fn landing_url(&self) -> Url {
        // Domains come from the generator's fixed alphabet, so the
        // formatted URL always parses.
        // wmtree-lint: allow(WM0105)
        Url::parse(&format!("https://www.{}/", self.domain)).expect("generated URL parses")
    }

    /// The URL of subpage `n` (1-based; 0 is the landing page).
    pub fn page_url(&self, n: usize) -> Url {
        if n == 0 {
            return self.landing_url();
        }
        // wmtree-lint: allow(WM0105)
        Url::parse(&format!("https://www.{}/page/{n}", self.domain)).expect("generated URL parses")
    }
}

/// Everything the "server side" needs to know about one visit to decide
/// what to deliver.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VisitCtx {
    /// Per-visit seed: drives ad rotation, A/B tests, session IDs.
    /// Distinct per (profile, page, visit); identical re-serves are
    /// byte-identical.
    pub visit_seed: u64,
    /// Browser major version (the paper uses 86 and 95).
    pub browser_version: u32,
    /// Whether the visit will include simulated user interaction.
    pub interaction: bool,
    /// Whether the browser runs headless.
    pub headless: bool,
    /// Does the browser carry state (cookies) from an earlier visit to
    /// this site? Stateless crawling (the paper's choice, Appendix C)
    /// always presents as a fresh visitor; stateful crawling makes
    /// repeat pages of a site "returning" — which changes what sites
    /// serve (e.g. consent banners only greet fresh visitors).
    pub returning_visitor: bool,
}

impl VisitCtx {
    /// A plain modern-browser visit with interaction, GUI.
    pub fn standard(visit_seed: u64) -> VisitCtx {
        VisitCtx {
            visit_seed,
            browser_version: 95,
            interaction: true,
            headless: false,
            returning_visitor: false,
        }
    }
}

/// A server reply: status plus content description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerReply {
    /// HTTP status.
    pub status: Status,
    /// What the body is / causes.
    pub content: Content,
}

/// The generated universe.
#[derive(Debug, Clone)]
pub struct WebUniverse {
    config: UniverseConfig,
    sites: Vec<SiteSpec>,
    by_domain: HashMap<String, usize>,
}

impl WebUniverse {
    /// Generate the universe for a configuration. Pure function of the
    /// config; cheap (site internals are derived lazily on `serve`).
    pub fn generate(config: UniverseConfig) -> WebUniverse {
        let ranks = tranco::sample_ranks(config.seed, &config.sites_per_bucket);
        let mut sites = Vec::with_capacity(ranks.len());
        let mut by_domain = HashMap::with_capacity(ranks.len());
        for rank in ranks {
            let domain = tranco::domain_at_rank(config.seed, rank);
            let h = SeedMixer::new(config.seed)
                .with("site")
                .with(&domain)
                .finish();
            // 5..=max_subpages, skewed up for popular sites (the paper
            // finds 14.6 pages/site on average; popular sites are larger).
            let max = config.max_subpages.max(5);
            let base = 5 + (crate::seed::bounded(h, (max - 4) as u64) as usize);
            let bucket = RankBucket::of_rank(rank);
            let popularity_bonus = match bucket {
                RankBucket::Top5k => 4,
                RankBucket::To10k => 3,
                RankBucket::To50k => 2,
                RankBucket::To250k => 1,
                RankBucket::To500k => 0,
            };
            let n_subpages = (base + popularity_bonus).min(max);
            let idx = sites.len();
            sites.push(SiteSpec {
                domain: domain.clone(),
                rank,
                bucket,
                n_subpages,
            });
            by_domain.insert(domain, idx);
        }
        WebUniverse {
            config,
            sites,
            by_domain,
        }
    }

    /// The configuration the universe was generated from.
    pub fn config(&self) -> &UniverseConfig {
        &self.config
    }

    /// All sites, sorted by rank.
    pub fn sites(&self) -> &[SiteSpec] {
        &self.sites
    }

    /// Look up a site by its registerable domain.
    pub fn site(&self, domain: &str) -> Option<&SiteSpec> {
        self.by_domain.get(domain).map(|&i| &self.sites[i])
    }

    /// Serve a URL for a visit: the heart of the synthetic web. Returns
    /// the reply the origin server would produce, or a 404 leaf for
    /// URLs outside the universe.
    pub fn serve(&self, url: &Url, ctx: &VisitCtx) -> ServerReply {
        crate::serve::serve(self, url, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> WebUniverse {
        WebUniverse::generate(UniverseConfig {
            seed: 1,
            sites_per_bucket: [10, 5, 5, 5, 5],
            max_subpages: 10,
        })
    }

    #[test]
    fn generation_is_deterministic() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.sites(), b.sites());
    }

    #[test]
    fn site_count_and_buckets() {
        let u = tiny();
        assert_eq!(u.sites().len(), 30);
        let top: Vec<_> = u
            .sites()
            .iter()
            .filter(|s| s.bucket == RankBucket::Top5k)
            .collect();
        assert_eq!(top.len(), 10);
    }

    #[test]
    fn lookup_by_domain() {
        let u = tiny();
        let first = &u.sites()[0];
        assert_eq!(u.site(&first.domain).unwrap().rank, first.rank);
        assert!(u.site("not-in-universe.com").is_none());
    }

    #[test]
    fn page_urls_well_formed() {
        let u = tiny();
        let s = &u.sites()[0];
        let landing = s.landing_url();
        assert_eq!(landing.path(), "/");
        assert_eq!(landing.site(), s.domain);
        let p3 = s.page_url(3);
        assert_eq!(p3.path(), "/page/3");
        assert_eq!(s.page_url(0), landing);
    }

    #[test]
    fn subpage_counts_in_range() {
        let u = tiny();
        for s in u.sites() {
            assert!(
                (5..=10).contains(&s.n_subpages),
                "{}: {}",
                s.domain,
                s.n_subpages
            );
        }
    }

    #[test]
    fn different_seed_different_universe() {
        let a = WebUniverse::generate(UniverseConfig {
            seed: 1,
            ..UniverseConfig::default()
        });
        let b = WebUniverse::generate(UniverseConfig {
            seed: 2,
            ..UniverseConfig::default()
        });
        assert_ne!(a.sites()[0].domain, b.sites()[0].domain);
    }
}
