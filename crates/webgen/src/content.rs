//! Content model: what a server response *is* and what it causes the
//! browser to load next.

use serde::{Deserialize, Serialize};
use wmtree_net::ResourceType;

/// Condition under which an embedded resource is actually loaded.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Condition {
    /// Loaded on every visit.
    Always,
    /// Loaded only after simulated user interaction (lazy loading below
    /// the fold — the paper's NoAction profile misses these).
    RequiresInteraction,
    /// Loaded with the given probability, decided per visit (A/B tests,
    /// ad rotation).
    PerVisit(f64),
    /// Loaded only by browsers at least this new (modern bundle).
    MinVersion(u32),
    /// Loaded only by browsers older than this version (legacy
    /// polyfills).
    BelowVersion(u32),
    /// Skipped when the browser runs headless (crude bot detection).
    NotHeadless,
    /// Loaded with the given probability only after interaction
    /// (lazy-loaded ad slots that also rotate).
    InteractionThenPerVisit(f64),
}

/// One resource a piece of content embeds/loads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Embed {
    /// Absolute URL, possibly containing per-visit placeholders:
    /// `{sid}` (session id), `{cb}` (cache buster), `{uid}` (user id).
    pub url: String,
    /// Resource type the embedding context implies.
    pub resource_type: ResourceType,
    /// When this embed fires.
    pub condition: Condition,
    /// Millisecond delay after the parent finishes before this load
    /// starts (scripts that set timers, delayed ad refreshes). Loads
    /// whose start would exceed the page timeout never happen.
    pub delay_ms: u64,
}

impl Embed {
    /// An unconditional, immediate embed.
    pub fn always(url: impl Into<String>, resource_type: ResourceType) -> Embed {
        Embed {
            url: url.into(),
            resource_type,
            condition: Condition::Always,
            delay_ms: 0,
        }
    }

    /// Builder: set the condition.
    pub fn when(mut self, condition: Condition) -> Embed {
        self.condition = condition;
        self
    }

    /// Builder: set the delay.
    pub fn after_ms(mut self, delay_ms: u64) -> Embed {
        self.delay_ms = delay_ms;
        self
    }
}

/// Alias kept for API clarity: scripts *spawn* loads.
pub type SpawnSpec = Embed;

/// What a URL serves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Content {
    /// An HTML document (main frame or iframe) embedding elements.
    Document {
        /// Elements the parser discovers.
        embeds: Vec<Embed>,
        /// `Set-Cookie` header lines this response carries.
        set_cookies: Vec<String>,
    },
    /// A script; executing it issues further loads (recorded by the
    /// browser with this script as the latest call-stack entry).
    Script {
        /// Loads the script performs.
        actions: Vec<Embed>,
        /// Cookies the script sets via `document.cookie` (recorded as if
        /// set by this script's origin response for simplicity).
        set_cookies: Vec<String>,
    },
    /// A stylesheet; the CSS engine loads fonts/background images, which
    /// Firefox reports through the same call-stack channel (§3.2).
    Stylesheet {
        /// Resources the sheet references.
        loads: Vec<Embed>,
    },
    /// An HTTP redirect (tracking hops, cookie syncing).
    Redirect {
        /// Target URL (may contain placeholders).
        to: String,
        /// `Set-Cookie` lines on the redirect response (ID syncing).
        set_cookies: Vec<String>,
    },
    /// A leaf asset (image, font, media, beacon response, ...).
    Leaf {
        /// Size of the body in bytes (for traffic accounting).
        body_len: u64,
        /// `Set-Cookie` lines (tracking pixels set cookies).
        set_cookies: Vec<String>,
    },
    /// An XHR/API response; JS handling it may issue follow-up loads.
    Api {
        /// Follow-up loads triggered by the handler.
        follow_ups: Vec<Embed>,
        /// `Set-Cookie` lines.
        set_cookies: Vec<String>,
    },
    /// A WebSocket endpoint accepting the handshake; the socket may
    /// push messages that trigger loads (live-content widgets).
    WebSocket {
        /// Loads triggered by pushed messages.
        pushes: Vec<Embed>,
    },
}

impl Content {
    /// A leaf with a given size and no cookies.
    pub fn leaf(body_len: u64) -> Content {
        Content::Leaf {
            body_len,
            set_cookies: Vec::new(),
        }
    }

    /// The `Set-Cookie` lines of this content, if any.
    pub fn set_cookies(&self) -> &[String] {
        match self {
            Content::Document { set_cookies, .. }
            | Content::Script { set_cookies, .. }
            | Content::Redirect { set_cookies, .. }
            | Content::Leaf { set_cookies, .. }
            | Content::Api { set_cookies, .. } => set_cookies,
            Content::Stylesheet { .. } | Content::WebSocket { .. } => &[],
        }
    }

    /// The child embeds this content can trigger (unconditioned view,
    /// used by tests and by tooling that inventories the universe).
    pub fn embeds(&self) -> &[Embed] {
        match self {
            Content::Document { embeds, .. } => embeds,
            Content::Script { actions, .. } => actions,
            Content::Stylesheet { loads } => loads,
            Content::Api { follow_ups, .. } => follow_ups,
            Content::WebSocket { pushes } => pushes,
            Content::Redirect { .. } | Content::Leaf { .. } => &[],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embed_builders() {
        let e = Embed::always("https://a.com/x.js", ResourceType::Script)
            .when(Condition::PerVisit(0.5))
            .after_ms(100);
        assert_eq!(e.condition, Condition::PerVisit(0.5));
        assert_eq!(e.delay_ms, 100);
    }

    #[test]
    fn content_set_cookies_accessor() {
        let c = Content::Leaf {
            body_len: 10,
            set_cookies: vec!["a=1".into()],
        };
        assert_eq!(c.set_cookies(), ["a=1".to_string()]);
        let ws = Content::WebSocket { pushes: vec![] };
        assert!(ws.set_cookies().is_empty());
    }

    #[test]
    fn content_embeds_accessor() {
        let e = Embed::always("https://a.com/i.png", ResourceType::Image);
        let d = Content::Document {
            embeds: vec![e.clone()],
            set_cookies: vec![],
        };
        assert_eq!(d.embeds().len(), 1);
        assert!(Content::leaf(5).embeds().is_empty());
        let r = Content::Redirect {
            to: "https://b.com/".into(),
            set_cookies: vec![],
        };
        assert!(r.embeds().is_empty());
    }
}
