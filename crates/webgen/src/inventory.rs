//! Ground-truth inventory: static analysis of the universe's content
//! graph.
//!
//! Because the web here is synthetic, we can do what no live-Web study
//! can: enumerate the *complete* reachable content of a page and label
//! each potential load with the condition gating it. This gives
//! analyses a ground truth to validate against — e.g. the measured
//! NoAction node deficit should match the share of interaction-gated
//! content, and a crawler's single-profile recall is bounded by the
//! per-visit content share.

use crate::content::{Condition, Content};
use crate::universe::{VisitCtx, WebUniverse};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use wmtree_url::Url;

/// How a potential load is gated, from the crawler's perspective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum GateClass {
    /// Loads on every visit by every profile.
    Always,
    /// Requires simulated user interaction.
    Interaction,
    /// Probabilistic per visit.
    PerVisit,
    /// Depends on the browser version.
    Version,
    /// Skipped by headless browsers.
    Headless,
}

impl GateClass {
    fn of(condition: &Condition) -> GateClass {
        match condition {
            Condition::Always => GateClass::Always,
            Condition::RequiresInteraction => GateClass::Interaction,
            Condition::PerVisit(_) => GateClass::PerVisit,
            Condition::MinVersion(_) | Condition::BelowVersion(_) => GateClass::Version,
            Condition::NotHeadless => GateClass::Headless,
            Condition::InteractionThenPerVisit(_) => GateClass::Interaction,
        }
    }
}

/// The inventory of one page's reachable content graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PageInventory {
    /// Page URL.
    pub page: String,
    /// Distinct reachable URL templates per gate class.
    pub by_gate: BTreeMap<GateClass, usize>,
    /// Total distinct URL templates reached.
    pub total: usize,
    /// Maximum traversal depth reached (bounded walk).
    pub max_depth: usize,
}

impl PageInventory {
    /// Share of the inventory behind a given gate.
    pub fn share(&self, gate: GateClass) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            *self.by_gate.get(&gate).unwrap_or(&0) as f64 / self.total as f64
        }
    }
}

/// Walk the content graph of a page breadth-first under a fixed visit
/// context, recording the gate class each URL template is *first*
/// reached under. The walk is bounded by `max_nodes` (ad chains recurse
/// probabilistically; the static walk follows every branch once).
pub fn page_inventory(
    universe: &WebUniverse,
    page: &Url,
    ctx: &VisitCtx,
    max_nodes: usize,
) -> PageInventory {
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut by_gate: BTreeMap<GateClass, usize> = BTreeMap::new();
    let mut queue: VecDeque<(String, GateClass, usize)> = VecDeque::new();
    queue.push_back((page.as_str(), GateClass::Always, 0));
    let mut max_depth = 0usize;

    while let Some((template, gate, depth)) = queue.pop_front() {
        if seen.len() >= max_nodes {
            break;
        }
        let concrete = template
            .replace("{sid}", "0")
            .replace("{uid}", "0")
            .replace("{cb}", "0");
        if !seen.insert(concrete.clone()) {
            continue;
        }
        *by_gate.entry(gate).or_insert(0) += 1;
        max_depth = max_depth.max(depth);

        let Ok(url) = Url::parse(&concrete) else {
            continue;
        };
        let reply = universe.serve(&url, ctx);
        // Gates are sticky along a branch: content behind an
        // interaction gate stays interaction-gated even if its own
        // condition is Always.
        for embed in reply.content.embeds() {
            let child_gate = gate.max(GateClass::of(&embed.condition));
            queue.push_back((embed.url.clone(), child_gate, depth + 1));
        }
        if let Content::Redirect { to, .. } = &reply.content {
            queue.push_back((to.clone(), gate, depth + 1));
        }
    }

    PageInventory {
        page: page.as_str(),
        by_gate,
        total: seen.len(),
        max_depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::{UniverseConfig, WebUniverse};

    fn uni() -> WebUniverse {
        WebUniverse::generate(UniverseConfig {
            seed: 91,
            sites_per_bucket: [6, 2, 2, 2, 2],
            max_subpages: 5,
        })
    }

    #[test]
    fn inventory_covers_content() {
        let u = uni();
        let page = u.sites()[0].landing_url();
        let inv = page_inventory(&u, &page, &VisitCtx::standard(1), 2000);
        assert!(inv.total > 20, "inventory {inv:?}");
        assert!(inv.max_depth >= 2);
        // All gate shares sum to 1.
        let sum: f64 = [
            GateClass::Always,
            GateClass::Interaction,
            GateClass::PerVisit,
            GateClass::Version,
            GateClass::Headless,
        ]
        .iter()
        .map(|g| inv.share(*g))
        .sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn interaction_gated_content_exists() {
        let u = uni();
        // Across several sites, interaction- and per-visit-gated content
        // is a meaningful slice of the inventory — the ground truth the
        // NoAction deficit measures.
        let mut interaction = 0.0;
        let mut pervisit = 0.0;
        let mut n = 0.0;
        for site in u.sites().iter().take(8) {
            let inv = page_inventory(&u, &site.landing_url(), &VisitCtx::standard(1), 2000);
            interaction += inv.share(GateClass::Interaction);
            pervisit += inv.share(GateClass::PerVisit);
            n += 1.0;
        }
        assert!(
            interaction / n > 0.03,
            "interaction share {}",
            interaction / n
        );
        assert!(pervisit / n > 0.05, "per-visit share {}", pervisit / n);
    }

    #[test]
    fn gates_are_sticky_down_branches() {
        // Content loaded inside an interaction-gated ad slot counts as
        // interaction-gated even though its own embed is Always.
        let u = uni();
        for site in u.sites().iter() {
            let inv = page_inventory(&u, &site.landing_url(), &VisitCtx::standard(1), 4000);
            let gated = inv
                .by_gate
                .get(&GateClass::Interaction)
                .copied()
                .unwrap_or(0);
            if gated > 3 {
                // More gated nodes than the handful of top-level lazy
                // images → descendants inherited the gate.
                return;
            }
        }
        panic!("no site with a gated subtree found");
    }

    #[test]
    fn inventory_is_deterministic() {
        let u = uni();
        let page = u.sites()[0].landing_url();
        let a = page_inventory(&u, &page, &VisitCtx::standard(1), 1000);
        let b = page_inventory(&u, &page, &VisitCtx::standard(1), 1000);
        assert_eq!(a, b);
    }

    #[test]
    fn bounded_walk_respects_cap() {
        let u = uni();
        let page = u.sites()[0].landing_url();
        let inv = page_inventory(&u, &page, &VisitCtx::standard(1), 10);
        assert!(inv.total <= 10);
    }
}
