//! Seed derivation: stable hashing so every part of the universe is a
//! pure function of (universe seed, identity strings).

/// FNV-1a + avalanche hash of a byte string with a seed. Stable across
//  runs and platforms (unlike `DefaultHasher`).
pub fn stable_hash(seed: u64, bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ seed;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    // splitmix64 finalizer for avalanche.
    let mut z = h;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hierarchical seed derivation: `SeedMixer::new(seed).with("site").with(domain).finish()`.
#[derive(Debug, Clone, Copy)]
pub struct SeedMixer(u64);

impl SeedMixer {
    /// Start from a root seed.
    pub fn new(seed: u64) -> Self {
        SeedMixer(seed)
    }

    /// Mix in a labelled component.
    pub fn with(self, label: &str) -> Self {
        SeedMixer(stable_hash(self.0, label.as_bytes()))
    }

    /// Mix in an integer component.
    pub fn with_u64(self, v: u64) -> Self {
        SeedMixer(stable_hash(self.0, &v.to_le_bytes()))
    }

    /// The derived seed.
    pub fn finish(self) -> u64 {
        self.0
    }
}

/// Derive a bounded value in `[0, bound)` from a hash (for structural
/// choices that do not need a full RNG).
pub fn bounded(hash: u64, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Multiply-shift: unbiased enough for structural variety.
    ((hash as u128 * bound as u128) >> 64) as u64
}

/// Derive a probability check: true with probability `p`.
pub fn chance(hash: u64, p: f64) -> bool {
    (hash as f64 / u64::MAX as f64) < p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_and_distinct() {
        assert_eq!(stable_hash(1, b"a"), stable_hash(1, b"a"));
        assert_ne!(stable_hash(1, b"a"), stable_hash(2, b"a"));
        assert_ne!(stable_hash(1, b"a"), stable_hash(1, b"b"));
    }

    #[test]
    fn mixer_order_matters() {
        let a = SeedMixer::new(7).with("x").with("y").finish();
        let b = SeedMixer::new(7).with("y").with("x").finish();
        assert_ne!(a, b);
    }

    #[test]
    fn mixer_with_u64() {
        let a = SeedMixer::new(7).with_u64(1).finish();
        let b = SeedMixer::new(7).with_u64(2).finish();
        assert_ne!(a, b);
    }

    #[test]
    fn bounded_in_range() {
        for i in 0..1000u64 {
            let v = bounded(stable_hash(3, &i.to_le_bytes()), 10);
            assert!(v < 10);
        }
    }

    #[test]
    fn bounded_covers_range() {
        let seen: std::collections::BTreeSet<u64> = (0..1000u64)
            .map(|i| bounded(stable_hash(3, &i.to_le_bytes()), 10))
            .collect();
        assert_eq!(seen.len(), 10);
    }

    #[test]
    fn chance_roughly_calibrated() {
        let hits = (0..10_000u64)
            .filter(|&i| chance(stable_hash(5, &i.to_le_bytes()), 0.3))
            .count();
        assert!((2700..3300).contains(&hits), "got {hits}");
    }
}
