//! The third-party service catalog: the fixed ecosystem of analytics,
//! advertising, social, CDN, and consent infrastructure every site in
//! the universe draws from.
//!
//! Domains here are mirrored by the embedded tracking filter list in
//! `wmtree-filterlist` so the tracking oracle classifies them like
//! EasyList classifies the real counterparts.

use serde::{Deserialize, Serialize};

/// Broad category of a third-party service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ServiceKind {
    /// Page analytics (pageview beacons, engagement events).
    Analytics,
    /// Display advertising (ad slots, header bidding, creatives).
    AdNetwork,
    /// Tag manager that injects other vendors.
    TagManager,
    /// Social widgets (like/share buttons).
    Social,
    /// Static content delivery (libraries, images, fonts).
    Cdn,
    /// Web font provider.
    Fonts,
    /// Consent management platform.
    Consent,
    /// Video hosting/embedding.
    Video,
    /// Cookie syncing / identity graph infrastructure.
    CookieSync,
    /// Browser-fingerprinting vendor.
    Fingerprinting,
}

/// A third-party service.
///
/// Serializes for reporting; not deserializable because the domain is
/// a `&'static str` borrowed from the compiled-in catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Service {
    /// Registerable domain.
    pub domain: &'static str,
    /// Category.
    pub kind: ServiceKind,
    /// Is traffic to this service (mostly) tracking, i.e. covered by
    /// the filter list?
    pub tracking: bool,
}

/// Analytics.
pub const METRICSPHERE: Service = Service {
    domain: "metricsphere.com",
    kind: ServiceKind::Analytics,
    tracking: true,
};
/// Simple hit counter.
pub const STATCOUNTER: Service = Service {
    domain: "statcounter-pro.net",
    kind: ServiceKind::Analytics,
    tracking: true,
};
/// Secondary analytics relay (also receives CSP reports).
pub const ANALYTICS_RELAY: Service = Service {
    domain: "analytics-relay.com",
    kind: ServiceKind::Analytics,
    tracking: true,
};
/// Tag manager.
pub const TAGROUTER: Service = Service {
    domain: "tagrouter.com",
    kind: ServiceKind::TagManager,
    tracking: true,
};
/// Primary ad network (slot serving).
pub const SYNDICATE_ADS: Service = Service {
    domain: "syndicate-ads.net",
    kind: ServiceKind::AdNetwork,
    tracking: true,
};
/// Header-bidding exchange (nested frames).
pub const RTB_EXCHANGE: Service = Service {
    domain: "rtb-exchange.net",
    kind: ServiceKind::AdNetwork,
    tracking: true,
};
/// Demand-side bid streams.
pub const BIDSTREAM: Service = Service {
    domain: "bidstream-x.com",
    kind: ServiceKind::AdNetwork,
    tracking: true,
};
/// Creative hosting.
pub const BANNERFARM: Service = Service {
    domain: "bannerfarm.biz",
    kind: ServiceKind::AdNetwork,
    tracking: true,
};
/// Second-tier ad network.
pub const POPMEDIA: Service = Service {
    domain: "popmedia-ads.com",
    kind: ServiceKind::AdNetwork,
    tracking: true,
};
/// Tracking-pixel host.
pub const PIXEL_TRAIL: Service = Service {
    domain: "pixel-trail.com",
    kind: ServiceKind::CookieSync,
    tracking: true,
};
/// Live beacon/WebSocket infrastructure.
pub const BEACON_HUB: Service = Service {
    domain: "beacon-hub.io",
    kind: ServiceKind::Analytics,
    tracking: true,
};
/// Cookie-sync hub.
pub const SYNC_PARTNERS: Service = Service {
    domain: "sync-partners.net",
    kind: ServiceKind::CookieSync,
    tracking: true,
};
/// ID-graph receiver.
pub const USERTRACK: Service = Service {
    domain: "usertrack-cdn.net",
    kind: ServiceKind::CookieSync,
    tracking: true,
};
/// Fingerprinting vendor.
pub const FINGERPRINT_LAB: Service = Service {
    domain: "fingerprint-lab.net",
    kind: ServiceKind::Fingerprinting,
    tracking: true,
};
/// Social network widgets.
pub const SOCIALVERSE: Service = Service {
    domain: "socialverse.com",
    kind: ServiceKind::Social,
    tracking: false,
};
/// Share-count widget.
pub const SHAREBAR: Service = Service {
    domain: "sharebar.net",
    kind: ServiceKind::Social,
    tracking: false,
};
/// General-purpose CDN.
pub const CDN_FASTEDGE: Service = Service {
    domain: "cdn-fastedge.net",
    kind: ServiceKind::Cdn,
    tracking: false,
};
/// Static asset CDN.
pub const STATICFILES: Service = Service {
    domain: "staticfiles-cdn.com",
    kind: ServiceKind::Cdn,
    tracking: false,
};
/// JS library CDN.
pub const JSLIBS: Service = Service {
    domain: "jslibs-cdn.net",
    kind: ServiceKind::Cdn,
    tracking: false,
};
/// Web fonts.
pub const FONTLIBRARY: Service = Service {
    domain: "fontlibrary.org",
    kind: ServiceKind::Fonts,
    tracking: false,
};
/// Consent management platform.
pub const CONSENT_SHIELD: Service = Service {
    domain: "consent-shield.com",
    kind: ServiceKind::Consent,
    tracking: false,
};
/// Video embeds.
pub const STREAMVID: Service = Service {
    domain: "streamvid-cdn.com",
    kind: ServiceKind::Video,
    tracking: false,
};

/// Every service in the catalog.
pub const ALL: [Service; 22] = [
    METRICSPHERE,
    STATCOUNTER,
    ANALYTICS_RELAY,
    TAGROUTER,
    SYNDICATE_ADS,
    RTB_EXCHANGE,
    BIDSTREAM,
    BANNERFARM,
    POPMEDIA,
    PIXEL_TRAIL,
    BEACON_HUB,
    SYNC_PARTNERS,
    USERTRACK,
    FINGERPRINT_LAB,
    SOCIALVERSE,
    SHAREBAR,
    CDN_FASTEDGE,
    STATICFILES,
    JSLIBS,
    FONTLIBRARY,
    CONSENT_SHIELD,
    STREAMVID,
];

/// Look up a service by registerable domain.
pub fn by_domain(domain: &str) -> Option<&'static Service> {
    ALL.iter().find(|s| s.domain == domain)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domains_unique() {
        let set: std::collections::BTreeSet<_> = ALL.iter().map(|s| s.domain).collect();
        assert_eq!(set.len(), ALL.len());
    }

    #[test]
    fn lookup_works() {
        assert_eq!(
            by_domain("metricsphere.com").unwrap().kind,
            ServiceKind::Analytics
        );
        assert!(by_domain("unknown.example").is_none());
    }

    #[test]
    fn tracking_flags_align_with_embedded_filterlist() {
        use wmtree_filterlist::{embedded, RequestInfo};
        use wmtree_net::ResourceType;
        use wmtree_url::Url;
        let page = Url::parse("https://news-1.com/").unwrap();
        for svc in ALL.iter().filter(|s| s.tracking) {
            // A generic resource on each tracking domain should be
            // flagged by the embedded list (host-anchor rules).
            let u = Url::parse(&format!("https://x.{}/anything/r?id=1", svc.domain)).unwrap();
            let flagged = embedded::tracking_list().is_tracking(&RequestInfo::new(
                &u,
                &page,
                ResourceType::Image,
            ));
            // Tag manager & relay rules are path-scoped; allow those two
            // to be flagged via their canonical endpoints instead.
            if !flagged {
                let canonical = match svc.domain {
                    "tagrouter.com" => "https://tagrouter.com/route/x.js",
                    "analytics-relay.com" => "https://analytics-relay.com/collect?e=pv",
                    other => panic!("tracking domain {other} not covered by filter list"),
                };
                let u = Url::parse(canonical).unwrap();
                let ty = if canonical.ends_with(".js") {
                    ResourceType::Script
                } else {
                    ResourceType::Image
                };
                assert!(
                    embedded::tracking_list().is_tracking(&RequestInfo::new(&u, &page, ty)),
                    "{} canonical endpoint not flagged",
                    svc.domain
                );
            }
        }
    }
}
