//! Concurrent replay determinism: N clients hammering the same
//! finished job through the server's replay cache must all get
//! byte-identical bodies, and the cache's hit/miss counters must
//! account for every request exactly once.

mod common;

use common::{get, scratch};
use wmtree::{BundleRun, Experiment, ExperimentConfig, Report, Scale};
use wmtree_bundle::bundle_content_hash;
use wmtree_server::{JobSpec, JobState, JobStore, Server, ServerConfig};
use wmtree_telemetry::MetricValue;

fn counter_value(snap: &wmtree_telemetry::Snapshot, name: &str) -> u64 {
    match snap.metrics.get(name) {
        Some(MetricValue::Counter(n)) => *n,
        _ => 0,
    }
}

#[test]
fn concurrent_replays_are_byte_identical_and_counted() {
    // Build the finished job offline — the store's on-disk format is
    // public API, so the test can assemble a `Done` job directly and
    // point the server at it.
    let root = scratch("concurrent-replay");
    let (store, _) = JobStore::open(&root).expect("open store");
    let job = store
        .submit(JobSpec {
            scale: "tiny".to_string(),
            seed: None,
            workers: None,
        })
        .expect("submit");
    let experiment = Experiment::new(ExperimentConfig::at_scale(Scale::Tiny));
    let bundle_dir = store.bundle_dir(&job);
    let BundleRun::Complete { .. } = experiment
        .run_to_bundle(&bundle_dir, None)
        .expect("offline crawl")
    else {
        panic!("uncapped run must complete");
    };
    let hash = bundle_content_hash(&bundle_dir).expect("hash");
    store
        .update(job.id, |j| {
            j.state = JobState::Done;
            j.sites_done = experiment.universe().sites().len();
            j.sites_total = j.sites_done;
            j.bundle_hash = Some(hash.clone());
        })
        .expect("mark done");
    drop(store);
    let expected = Report::generate(
        &experiment
            .replay_from_bundle(&bundle_dir)
            .expect("offline replay"),
    )
    .render();

    let handle = Server::start(ServerConfig::new(&root)).expect("start server");
    let addr = handle.addr();

    const CLIENTS: usize = 8;
    let before = wmtree_telemetry::global().snapshot();
    let bodies: Vec<String> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..CLIENTS)
            .map(|_| {
                scope.spawn(move || {
                    let resp = get(addr, "/jobs/0/report");
                    assert_eq!(resp.status, 200);
                    resp.text()
                })
            })
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("client"))
            .collect()
    });
    let after = wmtree_telemetry::global().snapshot();

    for body in &bodies {
        assert_eq!(body, &bodies[0], "concurrent replays disagree");
    }
    assert_eq!(
        bodies[0], expected,
        "served report drifted from offline replay"
    );

    // Every request took exactly one lookup: hits + misses == N, and
    // the first request in can never have been a hit.
    let diff = after.since(&before);
    let hits = counter_value(&diff, "server.replay.cache.hit");
    let misses = counter_value(&diff, "server.replay.cache.miss");
    assert_eq!(
        hits + misses,
        CLIENTS as u64,
        "hits {hits} + misses {misses}"
    );
    assert!(misses >= 1);

    // A sequential refetch now must be a pure cache hit.
    let resp = get(addr, "/jobs/0/report");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.text(), expected);
    let final_diff = wmtree_telemetry::global().snapshot().since(&after);
    assert_eq!(counter_value(&final_diff, "server.replay.cache.hit"), 1);
    assert_eq!(counter_value(&final_diff, "server.replay.cache.miss"), 0);

    // The metrics endpoint exposes the same counters it just bumped.
    let metrics = get(addr, "/metrics").text();
    assert!(metrics.contains("server.replay.cache.hit"), "{metrics}");
    assert!(metrics.contains("server.http.requests"), "{metrics}");

    // The per-site diff endpoint derives from the same cached replay:
    // deterministic across fetches, 404 for unknown sites.
    let site = {
        let results = experiment
            .replay_from_bundle(&bundle_dir)
            .expect("replay for site pick");
        results.data.pages[0].site.to_string()
    };
    let first = get(addr, &format!("/jobs/0/diff/{site}"));
    assert_eq!(first.status, 200);
    let body = first.text();
    assert!(body.contains("\"baseline\""), "{body}");
    assert_eq!(get(addr, &format!("/jobs/0/diff/{site}")).text(), body);
    assert_eq!(get(addr, "/jobs/0/diff/no-such-site.example").status, 404);

    handle.shutdown();
}
