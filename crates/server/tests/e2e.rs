//! End-to-end service test: submit a job over HTTP, hard-kill the
//! server mid-crawl, restart it over the same store, and verify the
//! resumed job's served report is byte-identical to an offline
//! crawl-and-replay of the same experiment — down to the ETag, which
//! must equal the offline bundle's content hash.

mod common;

use common::{get, request, scratch};
use wmtree::{BundleRun, Experiment, Report};
use wmtree_bundle::bundle_content_hash;
use wmtree_server::{JobRecord, JobState, JobsFile, Server, ServerConfig, JOBS_FILE};

/// Bounded poll: run `probe` every 25 ms until it yields, for at most
/// `tries` iterations (no wall-clock reads — the budget is iterations).
fn poll<T>(tries: usize, mut probe: impl FnMut() -> Option<T>) -> T {
    for _ in 0..tries {
        if let Some(value) = probe() {
            return value;
        }
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    panic!("poll budget of {tries} tries exhausted");
}

fn job_record(addr: std::net::SocketAddr, id: usize) -> JobRecord {
    let resp = get(addr, &format!("/jobs/{id}"));
    assert_eq!(resp.status, 200, "{}", resp.text());
    serde_json::from_str(&resp.text()).expect("job record json")
}

#[test]
fn kill_resume_and_byte_identical_replies() {
    // Offline reference: the same experiment the job will run, crawled
    // to a bundle and replayed — the ground truth for every byte the
    // server must serve.
    let spec_json = b"{\"scale\": \"tiny\", \"workers\": 2}";
    let offline_dir = scratch("e2e-offline");
    let mut config = wmtree::ExperimentConfig::at_scale(wmtree::Scale::Tiny);
    config.workers = 2;
    let offline = Experiment::new(config);
    let BundleRun::Complete { .. } = offline
        .run_to_bundle(&offline_dir, None)
        .expect("offline crawl")
    else {
        panic!("uncapped run must complete");
    };
    let offline_hash = bundle_content_hash(&offline_dir).expect("offline hash");
    let offline_report = Report::generate(
        &offline
            .replay_from_bundle(&offline_dir)
            .expect("offline replay"),
    );

    // Boot the service over an empty store; one site per batch keeps
    // the kill window wide.
    let root = scratch("e2e-store");
    let mut server_config = ServerConfig::new(&root);
    server_config.batch_sites = 1;
    let handle = Server::start(server_config.clone()).expect("start server");
    let addr = handle.addr();

    assert_eq!(get(addr, "/healthz").text(), "ok\n");

    // Submit, and watch the job record until the crawl is underway.
    let resp = request(addr, "POST", "/jobs", &[], spec_json);
    assert_eq!(resp.status, 201, "{}", resp.text());
    let job: JobRecord = serde_json::from_str(&resp.text()).expect("job json");
    assert_eq!((job.id, job.state), (0, JobState::Queued));

    poll(1200, || (job_record(addr, 0).sites_done >= 1).then_some(()));

    // Replay queries against an unfinished job are a 409, not a hang
    // or a partial answer.
    let resp = get(addr, "/jobs/0/report");
    assert_eq!(resp.status, 409, "{}", resp.text());

    // Hard-kill mid-crawl. The store must look crash-shaped: the job
    // is still `Running` on disk, exactly as after a SIGKILL.
    handle.kill();
    let on_disk: JobsFile = serde_json::from_str(
        &std::fs::read_to_string(root.join(JOBS_FILE)).expect("read JOBS.json"),
    )
    .expect("parse JOBS.json");
    assert_eq!(on_disk.jobs[0].state, JobState::Running);
    let progress_at_kill = on_disk.jobs[0].sites_done;
    assert!(progress_at_kill >= 1);
    assert!(
        progress_at_kill < on_disk.jobs[0].sites_total,
        "kill landed after the crawl finished; widen the batch window"
    );

    // Restart over the same store: the job recovers and resumes from
    // the bundle's checkpoint instead of starting over.
    let handle = Server::start(server_config).expect("restart server");
    let addr = handle.addr();
    let done = poll(4800, || {
        let job = job_record(addr, 0);
        (job.state == JobState::Done).then_some(job)
    });
    assert!(done.sites_done >= progress_at_kill);
    assert_eq!(done.sites_done, done.sites_total);

    // The interrupted-and-resumed bundle is byte-identical to the
    // uninterrupted offline one, so its content hash — and therefore
    // the ETag — must match exactly.
    assert_eq!(done.bundle_hash.as_deref(), Some(offline_hash.as_str()));
    let etag = format!("\"{offline_hash}\"");

    let resp = get(addr, "/jobs/0/report");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("etag"), Some(etag.as_str()));
    assert_eq!(
        resp.text(),
        offline_report.render(),
        "served report drifted"
    );

    // Conditional refetch with the returned ETag: 304, empty body.
    let resp = request(
        addr,
        "GET",
        "/jobs/0/report",
        &[("If-None-Match", etag.as_str())],
        b"",
    );
    assert_eq!(resp.status, 304);
    assert!(resp.body.is_empty());
    assert_eq!(resp.header("etag"), Some(etag.as_str()));

    // The JSON and CSV views replay from the same cached snapshot and
    // must equal the offline renders too.
    let resp = get(addr, "/jobs/0/report.json");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.text(), offline_report.to_json());
    let resp = get(addr, "/jobs/0/csv/table5");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("content-type"), Some("text/csv"));
    assert_eq!(resp.text(), offline_report.table5_csv());

    // The store listing serves the same hash the job recorded.
    let resp = get(addr, "/bundles");
    assert_eq!(resp.status, 200);
    let listing = resp.text();
    assert!(listing.contains("job-000"), "{listing}");
    assert!(listing.contains(&offline_hash), "{listing}");

    // Error shapes: unknown job, unknown CSV, bad scale, bad route.
    assert_eq!(get(addr, "/jobs/7").status, 404);
    let resp = get(addr, "/jobs/0/csv/fig99");
    assert_eq!(resp.status, 404);
    assert!(resp.text().contains("table7"), "{}", resp.text());
    let resp = request(addr, "POST", "/jobs", &[], b"{\"scale\": \"paper\"}");
    assert_eq!(resp.status, 400, "{}", resp.text());
    assert!(resp.text().contains("huge"), "{}", resp.text());
    assert_eq!(get(addr, "/nope").status, 404);
    assert_eq!(request(addr, "DELETE", "/jobs", &[], b"").status, 405);

    // Graceful drain via the API, as the CI smoke test does it.
    let resp = request(addr, "POST", "/shutdown", &[], b"");
    assert_eq!(resp.status, 202);
    handle.wait();

    // A drained store passes the artifact invariants the lint layer
    // checks: terminal job, hash recorded, bundle present.
    let on_disk: JobsFile = serde_json::from_str(
        &std::fs::read_to_string(root.join(JOBS_FILE)).expect("read JOBS.json"),
    )
    .expect("parse JOBS.json");
    assert_eq!(on_disk.jobs[0].state, JobState::Done);
}
