//! Tiny blocking HTTP/1.1 client for the integration tests — the
//! server speaks `Connection: close`, so one stream is one exchange.
//!
//! Compiled once per test binary; not every binary uses every helper.
#![allow(dead_code)]

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

/// A parsed response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl ClientResponse {
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    pub fn text(&self) -> String {
        String::from_utf8(self.body.clone()).expect("utf-8 body")
    }
}

/// Send one request, read the full response.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> ClientResponse {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: wmtree-test\r\n");
    for (name, value) in headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body).expect("write body");

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    parse_response(&raw)
}

pub fn get(addr: SocketAddr, path: &str) -> ClientResponse {
    request(addr, "GET", path, &[], b"")
}

fn parse_response(raw: &[u8]) -> ClientResponse {
    let header_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("header terminator");
    let head = std::str::from_utf8(&raw[..header_end]).expect("utf-8 head");
    let mut lines = head.split("\r\n");
    let status_line = lines.next().expect("status line");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let headers = lines
        .map(|line| {
            let (name, value) = line.split_once(':').expect("header line");
            (name.trim().to_ascii_lowercase(), value.trim().to_string())
        })
        .collect();
    ClientResponse {
        status,
        headers,
        body: raw[header_end + 4..].to_vec(),
    }
}

/// Fresh scratch directory under the system temp dir.
pub fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("wmtree-server-test-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}
