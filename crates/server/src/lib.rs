//! `wmtree-server` — the long-running measurement service.
//!
//! Turns the one-shot `repro` pipeline into a service: clients submit
//! crawl jobs over HTTP, a persistent queue (`JOBS.json`, same atomic
//! rewrite discipline as a bundle's `MANIFEST.json`) runs them through
//! the resumable bundle writer, and finished corpora are served back —
//! reports, CSV exports, per-site tree diffs — by *replaying* the
//! recorded bundles on demand.
//!
//! Determinism does the heavy lifting everywhere:
//!
//! - **Crash safety is resume, not redo.** A job is crawled in
//!   site-batches into a checkpointed bundle; if the process dies, the
//!   restarted server flips `Running` jobs to `Interrupted` and
//!   resumes them from the last checkpoint. The finished bundle is
//!   byte-identical to an uninterrupted run.
//! - **The bundle content hash is the ETag.** Every replay-derived
//!   response is a pure function of the bundle bytes, so the hash on
//!   the job record is a strong validator: `If-None-Match`
//!   revalidation answers `304` without touching the archive.
//! - **The cache needs no invalidation.** Replays are keyed by content
//!   hash; a hash can never map to two different responses, so entries
//!   are only ever evicted for capacity (LRU), never for staleness.
//!
//! The serving path performs no wall-clock reads (enforced by
//! `wmtree-lint` WM0101): timeouts are socket deadlines, cache
//! recency is a logical tick, and shutdown is flag-polling — so the
//! service stays inside the same determinism budget as the pipeline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod error;
pub mod http;
pub mod jobs;
pub mod server;

pub use cache::{CachedReplay, ReplayCache};
pub use error::ServerError;
pub use http::{Request, Response};
pub use jobs::{JobRecord, JobSpec, JobState, JobStore, JobsFile, JOBS_FILE, JOBS_VERSION};
pub use server::{Server, ServerConfig, ServerHandle};
