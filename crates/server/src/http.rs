//! A minimal HTTP/1.1 subset over blocking streams.
//!
//! Just enough protocol for the measurement service: one request per
//! connection (`Connection: close`), `Content-Length` bodies only (no
//! chunked encoding), bounded line/header/body sizes so a misbehaving
//! client cannot balloon memory. Everything is plain `std::io` — the
//! server keeps the workspace's no-external-dependencies rule.

use std::io::{BufRead, Write};

/// Longest accepted request line or header line, bytes.
pub const MAX_LINE: usize = 8 * 1024;

/// Most headers accepted per request.
pub const MAX_HEADERS: usize = 64;

/// Largest accepted request body, bytes.
pub const MAX_BODY: usize = 256 * 1024;

/// A parse failure, mapped to a 400 by the caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpParseError {
    /// What was wrong.
    pub detail: String,
}

impl std::fmt::Display for HttpParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed request: {}", self.detail)
    }
}

impl std::error::Error for HttpParseError {}

fn malformed(detail: impl Into<String>) -> HttpParseError {
    HttpParseError {
        detail: detail.into(),
    }
}

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Method verb, uppercase as received (`GET`, `POST`, ...).
    pub method: String,
    /// Path component, without the query string.
    pub path: String,
    /// Query string after `?`, if any (undecoded).
    pub query: Option<String>,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

/// Read one CRLF- (or LF-) terminated line, enforcing [`MAX_LINE`].
fn read_line(reader: &mut impl BufRead) -> Result<String, HttpParseError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => break,
            Ok(_) => {
                if byte[0] == b'\n' {
                    break;
                }
                line.push(byte[0]);
                if line.len() > MAX_LINE {
                    return Err(malformed("line too long"));
                }
            }
            Err(e) => return Err(malformed(format!("read failed: {e}"))),
        }
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| malformed("line is not utf-8"))
}

impl Request {
    /// Parse one request from a blocking reader.
    pub fn read_from(reader: &mut impl BufRead) -> Result<Request, HttpParseError> {
        let request_line = read_line(reader)?;
        let mut parts = request_line.split(' ');
        let method = parts.next().unwrap_or_default().to_string();
        let target = parts.next().ok_or_else(|| malformed("missing path"))?;
        let version = parts.next().ok_or_else(|| malformed("missing version"))?;
        if method.is_empty() || !version.starts_with("HTTP/1.") {
            return Err(malformed(format!("bad request line {request_line:?}")));
        }
        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (p.to_string(), Some(q.to_string())),
            None => (target.to_string(), None),
        };

        let mut headers = Vec::new();
        loop {
            let line = read_line(reader)?;
            if line.is_empty() {
                break;
            }
            if headers.len() >= MAX_HEADERS {
                return Err(malformed("too many headers"));
            }
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| malformed(format!("bad header line {line:?}")))?;
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }

        let content_length = headers
            .iter()
            .find(|(name, _)| name == "content-length")
            .map(|(_, value)| {
                value
                    .parse::<usize>()
                    .map_err(|_| malformed(format!("bad content-length {value:?}")))
            })
            .transpose()?
            .unwrap_or(0);
        if content_length > MAX_BODY {
            return Err(malformed(format!(
                "body of {content_length} bytes exceeds the {MAX_BODY}-byte cap"
            )));
        }
        let mut body = vec![0u8; content_length];
        if content_length > 0 {
            reader
                .read_exact(&mut body)
                .map_err(|e| malformed(format!("short body: {e}")))?;
        }

        Ok(Request {
            method,
            path,
            query,
            headers,
            body,
        })
    }

    /// First header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A response under assembly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers (`Content-Length` and `Connection` are added at
    /// write time).
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A response with a content type and body.
    pub fn new(status: u16, content_type: &str, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            headers: vec![("Content-Type".to_string(), content_type.to_string())],
            body: body.into(),
        }
    }

    /// Plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response::new(
            status,
            "text/plain; charset=utf-8",
            body.into().into_bytes(),
        )
    }

    /// JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response::new(status, "application/json", body.into().into_bytes())
    }

    /// An empty `304 Not Modified` carrying the (already-quoted) ETag.
    pub fn not_modified(etag: &str) -> Response {
        Response {
            status: 304,
            headers: vec![("ETag".to_string(), etag.to_string())],
            body: Vec::new(),
        }
    }

    /// Add a header.
    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Serialize status line, headers, and body to a writer.
    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        write!(w, "HTTP/1.1 {} {}\r\n", self.status, reason(self.status))?;
        for (name, value) in &self.headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        write!(w, "Content-Length: {}\r\n", self.body.len())?;
        write!(w, "Connection: close\r\n\r\n")?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// Reason phrase for the status codes this server emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        304 => "Not Modified",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, HttpParseError> {
        Request::read_from(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_request_line_headers_and_body() {
        let req = parse("POST /jobs?wait=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody")
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.query.as_deref(), Some("wait=1"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn rejects_garbage_and_oversized_bodies() {
        assert!(parse("not http at all\r\n\r\n").is_err());
        assert!(parse("GET\r\n\r\n").is_err());
        let huge = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        let err = parse(&huge).unwrap_err();
        assert!(err.to_string().contains("cap"), "{err}");
    }

    #[test]
    fn response_wire_format_is_exact() {
        let mut out = Vec::new();
        Response::text(200, "ok\n")
            .with_header("ETag", "\"abcd\"")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("ETag: \"abcd\"\r\n"), "{text}");
        assert!(text.contains("Content-Length: 3\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\nok\n"), "{text}");
    }
}
