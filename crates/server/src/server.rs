//! The measurement service itself: listener, HTTP worker pool, job
//! workers, routing.
//!
//! Threading model: one accept thread feeds a bounded connection
//! channel drained by `http_workers` handler threads; `job_workers`
//! threads claim jobs from the persistent queue and crawl them in
//! resumable batches. Every thread is spawned through
//! [`std::thread::Builder`] and joined on shutdown — nothing detaches,
//! so the worker-count determinism discipline holds for the service
//! exactly as it does for the pipeline.
//!
//! Shutdown has two shapes, both exercised by the e2e tests:
//!
//! - **drain** ([`ServerHandle::shutdown`] or `POST /shutdown`): stop
//!   accepting, finish in-flight responses, stop each running job at
//!   its next batch boundary and persist it as `Interrupted`.
//! - **kill** ([`ServerHandle::kill`]): abandon running jobs between
//!   batches *without* updating `JOBS.json` — the store is left
//!   exactly as a SIGKILL would leave it (jobs still `Running`), which
//!   is what the restart-recovery path is tested against.

use crate::cache::{CachedReplay, ReplayCache};
use crate::error::ServerError;
use crate::http::{Request, Response};
use crate::jobs::{JobRecord, JobSpec, JobState, JobStore};
use parking_lot::Mutex;
use serde::Serialize;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::Duration;
use wmtree::{BundleRun, Experiment, Report};
use wmtree_bundle::{bundle_content_hash, BundleStore};
use wmtree_telemetry::{counter, gauge, MetricValue};
use wmtree_tree::{diff_trees, TreeDiff};

/// How the service is set up.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Job store root: `JOBS.json` plus one bundle directory per job.
    pub root: PathBuf,
    /// Listen address; use port 0 to let the OS pick.
    pub addr: String,
    /// HTTP handler threads.
    pub http_workers: usize,
    /// Crawl worker threads (jobs claimed and run concurrently).
    pub job_workers: usize,
    /// Replays held by the LRU cache.
    pub cache_capacity: usize,
    /// Sites crawled per resumable batch; shutdown and kill act at
    /// batch boundaries, so this bounds drain latency.
    pub batch_sites: usize,
    /// Socket read/write timeout — a stalled client cannot pin a
    /// handler thread longer than this.
    pub read_timeout: Duration,
}

impl ServerConfig {
    /// Defaults for a store root: loopback on an OS-picked port, small
    /// pools sized for a test/CI machine.
    pub fn new(root: impl Into<PathBuf>) -> ServerConfig {
        ServerConfig {
            root: root.into(),
            addr: "127.0.0.1:0".to_string(),
            http_workers: 4,
            job_workers: 1,
            cache_capacity: 4,
            batch_sites: 4,
            read_timeout: Duration::from_secs(10),
        }
    }
}

/// Shutdown flags shared by every thread.
#[derive(Debug, Default)]
struct Shutdown {
    drain: AtomicBool,
    kill: AtomicBool,
}

impl Shutdown {
    fn draining(&self) -> bool {
        self.drain.load(Ordering::SeqCst)
    }
    fn killed(&self) -> bool {
        self.kill.load(Ordering::SeqCst)
    }
}

/// State shared across all server threads.
struct Shared {
    store: JobStore,
    cache: ReplayCache,
    shutdown: Shutdown,
    batch_sites: usize,
}

/// Namespace for starting the service.
pub struct Server;

impl Server {
    /// Open the job store (recovering interrupted jobs), bind the
    /// listener, and spawn the accept/HTTP/job threads. Returns once
    /// the service is accepting connections.
    pub fn start(config: ServerConfig) -> Result<ServerHandle, ServerError> {
        let (store, recovered) = JobStore::open(&config.root)?;
        if recovered > 0 {
            counter!("server.jobs.recovered").add(recovered as u64);
        }
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| ServerError::io(format!("binding {}", config.addr), e))?;
        let addr = listener
            .local_addr()
            .map_err(|e| ServerError::io("resolving local addr", e))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| ServerError::io("setting listener nonblocking", e))?;

        let shared = Arc::new(Shared {
            store,
            cache: ReplayCache::new(config.cache_capacity),
            shutdown: Shutdown::default(),
            batch_sites: config.batch_sites.max(1),
        });

        let (tx, rx) = mpsc::sync_channel::<TcpStream>(128);
        let rx = Arc::new(Mutex::new(rx));
        let mut threads = Vec::new();

        let spawn = |name: String, f: Box<dyn FnOnce() + Send>| {
            thread::Builder::new()
                .name(name.clone())
                .spawn(f)
                .map_err(|e| ServerError::io(format!("spawning {name}"), e))
        };

        {
            let shared = Arc::clone(&shared);
            threads.push(spawn(
                "wmtree-accept".to_string(),
                Box::new(move || accept_loop(&shared, &listener, &tx)),
            )?);
        }
        for i in 0..config.http_workers.max(1) {
            let shared = Arc::clone(&shared);
            let rx = Arc::clone(&rx);
            let timeout = config.read_timeout;
            threads.push(spawn(
                format!("wmtree-http-{i}"),
                Box::new(move || http_worker(&shared, &rx, timeout)),
            )?);
        }
        for i in 0..config.job_workers.max(1) {
            let shared = Arc::clone(&shared);
            threads.push(spawn(
                format!("wmtree-job-{i}"),
                Box::new(move || job_worker(&shared)),
            )?);
        }

        Ok(ServerHandle {
            addr,
            shared,
            threads,
        })
    }
}

/// A running service; dropping without calling a stop method leaks the
/// threads, so tests and the CLI always consume the handle.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful drain: stop accepting, finish in-flight work, persist
    /// running jobs as `Interrupted` at their next batch boundary, and
    /// join every thread.
    pub fn shutdown(mut self) {
        self.shared.shutdown.drain.store(true, Ordering::SeqCst);
        self.join();
    }

    /// Hard stop: like a crash. Running jobs are abandoned between
    /// batches and `JOBS.json` is left saying `Running`; the next
    /// [`Server::start`] over the same root recovers them.
    pub fn kill(mut self) {
        self.shared.shutdown.kill.store(true, Ordering::SeqCst);
        self.shared.shutdown.drain.store(true, Ordering::SeqCst);
        self.join();
    }

    /// Block until the server drains (e.g. a client sent
    /// `POST /shutdown`). Used by `repro serve`.
    pub fn wait(mut self) {
        self.join();
    }

    fn join(&mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Accept connections until drain/kill; backpressure via the bounded
/// channel. Dropping the sender on exit is what releases the HTTP
/// workers from `recv`.
fn accept_loop(shared: &Shared, listener: &TcpListener, tx: &mpsc::SyncSender<TcpStream>) {
    loop {
        if shared.shutdown.draining() || shared.shutdown.killed() {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                counter!("server.http.connections").inc();
                // The listener is nonblocking (for shutdown polling);
                // handler io must be blocking-with-timeout.
                let _ = stream.set_nonblocking(false);
                if tx.send(stream).is_err() {
                    return;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(2));
            }
            Err(_) => thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Drain the connection channel until it disconnects.
fn http_worker(shared: &Shared, rx: &Mutex<mpsc::Receiver<TcpStream>>, timeout: Duration) {
    loop {
        let next = {
            let guard = rx.lock();
            guard.recv()
        };
        match next {
            Ok(stream) => handle_connection(shared, stream, timeout),
            Err(_) => return,
        }
    }
}

/// Read one request, route it, write one response, close.
fn handle_connection(shared: &Shared, stream: TcpStream, timeout: Duration) {
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_write_timeout(Some(timeout));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let response = match Request::read_from(&mut reader) {
        Ok(req) => {
            counter!("server.http.requests").inc();
            handle_request(shared, &req)
        }
        Err(e) => {
            counter!("server.http.bad_requests").inc();
            error_response(400, &e.to_string())
        }
    };
    wmtree_telemetry::global()
        .metrics()
        .counter(&format!("server.http.status.{}xx", response.status / 100))
        .inc();
    let mut stream = stream;
    let _ = response.write_to(&mut stream);
}

/// JSON error body.
#[derive(Serialize)]
struct ErrorBody {
    error: String,
}

fn error_response(status: u16, detail: &str) -> Response {
    let body = serde_json::to_string(&ErrorBody {
        error: detail.to_string(),
    })
    .unwrap_or_else(|_| "{\"error\": \"internal\"}".to_string());
    Response::json(status, format!("{body}\n"))
}

fn json_ok<T: Serialize>(status: u16, value: &T) -> Response {
    match serde_json::to_string(value) {
        Ok(body) => Response::json(status, format!("{body}\n")),
        Err(e) => error_response(500, &format!("serialization failed: {e}")),
    }
}

/// Route one request.
fn handle_request(shared: &Shared, req: &Request) -> Response {
    let path = req.path.trim_matches('/').to_string();
    let segments: Vec<&str> = if path.is_empty() {
        Vec::new()
    } else {
        path.split('/').collect()
    };
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => Response::text(200, "ok\n"),
        ("GET", ["metrics"]) => Response::text(200, render_metrics()),
        ("GET", ["jobs"]) => json_ok(200, &shared.store.list()),
        ("POST", ["jobs"]) => submit_job(shared, req),
        ("GET", ["jobs", id]) => match parse_id(id).and_then(|id| shared.store.get(id)) {
            Ok(job) => json_ok(200, &job),
            Err(e) => error_response(e.status(), &e.to_string()),
        },
        ("GET", ["bundles"]) => match BundleStore::list(shared.store.root()) {
            Ok(list) => json_ok(200, &list),
            Err(e) => error_response(500, &e.to_string()),
        },
        ("GET", ["jobs", id, "report"]) => {
            replayed(shared, req, id, |r| Response::text(200, r.report.render()))
        }
        ("GET", ["jobs", id, "report.json"]) => {
            replayed(shared, req, id, |r| Response::json(200, r.report.to_json()))
        }
        ("GET", ["jobs", id, "csv", name]) => {
            let name = name.to_string();
            replayed(shared, req, id, move |r| {
                match csv_by_name(&r.report, &name) {
                    Some(csv) => Response::new(200, "text/csv", csv.into_bytes()),
                    None => error_response(
                        404,
                        &format!("unknown csv {name:?} (valid: {})", CSV_NAMES.join(", ")),
                    ),
                }
            })
        }
        ("GET", ["jobs", id, "diff", site]) => {
            let site = site.to_string();
            replayed(shared, req, id, move |r| site_diff(&r, &site))
        }
        ("POST", ["shutdown"]) => {
            shared.shutdown.drain.store(true, Ordering::SeqCst);
            counter!("server.http.shutdown_requests").inc();
            Response::text(202, "draining\n")
        }
        (_, ["healthz" | "metrics" | "jobs" | "bundles" | "shutdown", ..]) => {
            error_response(405, &format!("method {} not allowed here", req.method))
        }
        _ => error_response(404, &format!("no route for {} /{path}", req.method)),
    }
}

fn parse_id(raw: &str) -> Result<usize, ServerError> {
    raw.parse::<usize>()
        .map_err(|_| ServerError::bad_request(format!("job id {raw:?} is not an integer")))
}

fn submit_job(shared: &Shared, req: &Request) -> Response {
    let spec: JobSpec = match std::str::from_utf8(&req.body)
        .map_err(|_| "body is not utf-8".to_string())
        .and_then(|text| serde_json::from_str(text).map_err(|e| e.to_string()))
    {
        Ok(spec) => spec,
        Err(e) => return error_response(400, &format!("bad job spec: {e}")),
    };
    match shared.store.submit(spec) {
        Ok(job) => {
            counter!("server.jobs.submitted").inc();
            update_queue_gauge(shared);
            json_ok(201, &job)
        }
        Err(e) => error_response(e.status(), &e.to_string()),
    }
}

/// Serve a response derived from a finished job's replay, with
/// ETag/If-None-Match handling. A job that exists but is not `Done`
/// yet is a `409 Conflict` naming its current state.
fn replayed(
    shared: &Shared,
    req: &Request,
    raw_id: &str,
    render: impl FnOnce(Arc<CachedReplay>) -> Response,
) -> Response {
    let job = match parse_id(raw_id).and_then(|id| shared.store.get(id)) {
        Ok(job) => job,
        Err(e) => return error_response(e.status(), &e.to_string()),
    };
    if job.state != JobState::Done {
        return error_response(
            409,
            &format!(
                "job {} is {} — replay queries need a done job",
                job.id,
                job.state.label()
            ),
        );
    }
    let Some(hash) = job.bundle_hash.clone() else {
        return error_response(500, &format!("done job {} has no bundle hash", job.id));
    };
    let etag = format!("\"{hash}\"");

    // Revalidation never needs the replay: the hash on the job record
    // *is* the content identity of every derived response.
    if let Some(inm) = req.header("if-none-match") {
        if inm.split(',').any(|c| c.trim() == etag || c.trim() == "*") {
            counter!("server.http.not_modified").inc();
            return Response::not_modified(&etag);
        }
    }

    let replay = match replay_job(shared, &job, &hash) {
        Ok(replay) => replay,
        Err(e) => return error_response(e.status(), &e.to_string()),
    };
    render(replay)
        .with_header("ETag", &etag)
        .with_header("Cache-Control", "no-cache")
}

/// Fetch a job's replay through the cache (one hit or miss counted per
/// call), replaying the bundle on miss. The replay itself goes through
/// the disk-backed tree/site cache next to the job's bundle
/// (`TREECACHE/`), so even a cold in-process cache — a restarted
/// server — folds unchanged sites from cached accumulators instead of
/// rebuilding their trees. The cached path is byte-identical to the
/// cold one, so the ETag derived from the bundle hash stays valid.
fn replay_job(
    shared: &Shared,
    job: &JobRecord,
    hash: &str,
) -> Result<Arc<CachedReplay>, ServerError> {
    if let Some(hit) = shared.cache.lookup(hash) {
        return Ok(hit);
    }
    let config = job.spec.config()?;
    let bundle_dir = shared.store.bundle_dir(job);
    let tree_cache = wmtree::AnalysisCache::open(
        &bundle_dir.join(wmtree::tree::cache::CACHE_DIR_NAME),
        &config,
    );
    let experiment = Experiment::new(config);
    let results = experiment
        .replay_from_bundle_cached(&bundle_dir, &tree_cache)?
        .results;
    let report = Report::generate(&results);
    Ok(shared.cache.insert(
        hash.to_string(),
        Arc::new(CachedReplay {
            etag: format!("\"{hash}\""),
            results,
            report,
        }),
    ))
}

/// The CSV exports the server knows by name.
const CSV_NAMES: [&str; 8] = [
    "fig1", "fig2", "fig3", "fig4", "fig7", "fig8", "table5", "table7",
];

fn csv_by_name(report: &Report, name: &str) -> Option<String> {
    match name {
        "fig1" => Some(report.fig1_csv()),
        "fig2" => Some(report.fig2_csv()),
        "fig3" => Some(report.fig3_csv()),
        "fig4" => Some(report.fig4_csv()),
        "fig7" => Some(report.fig7_csv()),
        "fig8" => Some(report.fig8_csv()),
        "table5" => Some(report.table5_csv()),
        "table7" => Some(report.table7_csv()),
        _ => None,
    }
}

/// Per-profile tree diff of one page against the baseline profile.
#[derive(Serialize)]
struct PageProfileDiff {
    profile: String,
    diff: TreeDiff,
}

/// All pages of one site, each diffed baseline-vs-profile.
#[derive(Serialize)]
struct PageDiffs {
    url: String,
    diffs: Vec<PageProfileDiff>,
}

/// The diff endpoint's body.
#[derive(Serialize)]
struct SiteDiff {
    site: String,
    baseline: String,
    pages: Vec<PageDiffs>,
}

/// `GET /jobs/{id}/diff/{site}`: every vetted page of `site`, diffing
/// the baseline (first) profile's tree against each other profile's.
fn site_diff(replay: &CachedReplay, site: &str) -> Response {
    let data = &replay.results.data;
    let baseline = data
        .profile_names
        .first()
        .cloned()
        .unwrap_or_else(|| "profile-0".to_string());
    let pages: Vec<PageDiffs> = data
        .pages
        .iter()
        .filter(|p| p.site.as_ref() == site)
        .map(|p| PageDiffs {
            url: p.url.clone(),
            diffs: p
                .trees
                .iter()
                .enumerate()
                .skip(1)
                .map(|(i, tree)| PageProfileDiff {
                    profile: data
                        .profile_names
                        .get(i)
                        .cloned()
                        .unwrap_or_else(|| format!("profile-{i}")),
                    diff: diff_trees(&p.trees[0], tree),
                })
                .collect(),
        })
        .collect();
    if pages.is_empty() {
        let known: Vec<&str> = {
            let mut sites: Vec<&str> = data.pages.iter().map(|p| p.site.as_ref()).collect();
            sites.dedup();
            sites
        };
        return error_response(
            404,
            &format!(
                "site {site:?} has no vetted pages in this job ({} sites available)",
                known.len()
            ),
        );
    }
    json_ok(
        200,
        &SiteDiff {
            site: site.to_string(),
            baseline,
            pages,
        },
    )
}

/// Render the global metric snapshot as `name value` lines (sorted —
/// the snapshot map is a BTreeMap).
fn render_metrics() -> String {
    let snapshot = wmtree_telemetry::global().snapshot();
    let mut out = String::new();
    for (name, value) in &snapshot.metrics {
        match value {
            MetricValue::Counter(n) => out.push_str(&format!("{name} {n}\n")),
            MetricValue::Gauge(v) => out.push_str(&format!("{name} {v}\n")),
            MetricValue::Histogram(h) => {
                out.push_str(&format!("{name}.count {}\n", h.count));
                out.push_str(&format!("{name}.sum {}\n", h.sum));
            }
        }
    }
    out
}

fn update_queue_gauge(shared: &Shared) {
    let queued = shared
        .store
        .list()
        .iter()
        .filter(|j| matches!(j.state, JobState::Queued | JobState::Interrupted))
        .count();
    gauge!("server.jobs.queued").set(queued as i64);
}

/// Claim-and-run loop of one job worker.
fn job_worker(shared: &Shared) {
    loop {
        if shared.shutdown.draining() || shared.shutdown.killed() {
            return;
        }
        match shared.store.claim_next() {
            Ok(Some(job)) => {
                update_queue_gauge(shared);
                run_job(shared, job);
                update_queue_gauge(shared);
            }
            Ok(None) => thread::sleep(Duration::from_millis(20)),
            Err(_) => thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// Crawl one claimed job in resumable batches until done, failed,
/// drained, or killed.
fn run_job(shared: &Shared, job: JobRecord) {
    let fail = |detail: String| {
        counter!("server.jobs.failed").inc();
        let _ = shared.store.update(job.id, |j| {
            j.state = JobState::Failed;
            j.error = Some(detail);
        });
    };
    let config = match job.spec.config() {
        Ok(config) => config,
        Err(e) => return fail(e.to_string()),
    };
    let experiment = Experiment::new(config);
    let sites_total = experiment.universe().sites().len();
    if shared
        .store
        .update(job.id, |j| j.sites_total = sites_total)
        .is_err()
    {
        return;
    }
    let dir = shared.store.bundle_dir(&job);
    loop {
        // A kill abandons the job *without* touching JOBS.json: the
        // store must look exactly as it would after a real crash.
        if shared.shutdown.killed() {
            return;
        }
        match experiment.run_to_bundle(&dir, Some(shared.batch_sites)) {
            Ok(BundleRun::Complete { .. }) => {
                let hash = match bundle_content_hash(&dir) {
                    Ok(hash) => hash,
                    Err(e) => return fail(format!("hashing finished bundle: {e}")),
                };
                counter!("server.jobs.completed").inc();
                let _ = shared.store.update(job.id, |j| {
                    j.state = JobState::Done;
                    j.sites_done = j.sites_total;
                    j.bundle_hash = Some(hash);
                });
                return;
            }
            Ok(BundleRun::Partial {
                sites_done,
                sites_total,
                ..
            }) => {
                counter!("server.jobs.batches").inc();
                // Killed mid-batch: abandon before persisting anything
                // (kill also raises the drain flag — checking drain
                // first would wrongly record a clean interrupt).
                if shared.shutdown.killed() {
                    return;
                }
                let drained = shared.shutdown.draining();
                let _ = shared.store.update(job.id, |j| {
                    j.sites_done = sites_done;
                    j.sites_total = sites_total;
                    if drained {
                        j.state = JobState::Interrupted;
                    }
                });
                if drained {
                    counter!("server.jobs.interrupted").inc();
                    return;
                }
            }
            Err(e) => return fail(format!("crawl batch failed: {e}")),
        }
    }
}
