//! Server error type.

use std::fmt;
use std::path::PathBuf;
use wmtree_bundle::BundleError;

/// Everything that can go wrong inside the measurement service.
#[derive(Debug)]
pub enum ServerError {
    /// An io failure, with the path or operation it happened on.
    Io {
        /// What was being done when the error hit.
        context: String,
        /// The underlying io error.
        source: std::io::Error,
    },
    /// A JSON (de)serialization failure.
    Json {
        /// What was being parsed or written.
        context: String,
        /// The underlying serde error.
        source: serde_json::Error,
    },
    /// A bundle-layer failure (load, replay, hash).
    Bundle(BundleError),
    /// The job store's `JOBS.json` was written by an unsupported
    /// format version.
    UnsupportedVersion {
        /// Version found in the file.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// A request referenced a job id the store does not hold.
    UnknownJob {
        /// The requested id.
        id: usize,
        /// How many jobs the store holds (valid ids are `0..n_jobs`).
        n_jobs: usize,
    },
    /// A request was syntactically valid HTTP but semantically wrong
    /// (bad JSON body, unknown scale, unknown CSV name, ...).
    BadRequest {
        /// Human-readable explanation, sent back in the response body.
        detail: String,
    },
    /// The job store root exists but is not a directory.
    RootNotADirectory {
        /// The offending path.
        path: PathBuf,
    },
}

impl ServerError {
    /// Io error with context.
    pub fn io(context: impl fmt::Display, source: std::io::Error) -> ServerError {
        ServerError::Io {
            context: context.to_string(),
            source,
        }
    }

    /// JSON error with context.
    pub fn json(context: impl fmt::Display, source: serde_json::Error) -> ServerError {
        ServerError::Json {
            context: context.to_string(),
            source,
        }
    }

    /// Bad-request error with a detail message.
    pub fn bad_request(detail: impl fmt::Display) -> ServerError {
        ServerError::BadRequest {
            detail: detail.to_string(),
        }
    }

    /// The HTTP status this error maps to when it surfaces from a
    /// request handler.
    pub fn status(&self) -> u16 {
        match self {
            ServerError::UnknownJob { .. } => 404,
            ServerError::BadRequest { .. } => 400,
            ServerError::Bundle(BundleError::NotFound { .. }) => 404,
            _ => 500,
        }
    }
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Io { context, source } => write!(f, "io error ({context}): {source}"),
            ServerError::Json { context, source } => {
                write!(f, "json error ({context}): {source}")
            }
            ServerError::Bundle(e) => write!(f, "bundle error: {e}"),
            ServerError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported JOBS.json version {found} (this build reads version {supported})"
            ),
            ServerError::UnknownJob { id, n_jobs } => {
                write!(f, "no such job {id} (store holds {n_jobs} jobs)")
            }
            ServerError::BadRequest { detail } => write!(f, "bad request: {detail}"),
            ServerError::RootNotADirectory { path } => {
                write!(f, "job store root {} is not a directory", path.display())
            }
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Io { source, .. } => Some(source),
            ServerError::Json { source, .. } => Some(source),
            ServerError::Bundle(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BundleError> for ServerError {
    fn from(e: BundleError) -> ServerError {
        ServerError::Bundle(e)
    }
}
