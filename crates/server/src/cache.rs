//! The content-addressed replay cache.
//!
//! Everything the server serves from a finished job — report, JSON,
//! CSVs, per-site tree diffs — derives from one replay of the job's
//! bundle. Replays are deterministic, so the bundle's content hash is
//! a complete cache key *and* the HTTP ETag: same hash, byte-identical
//! responses. The cache holds `Arc` snapshots (results + generated
//! report) with LRU eviction; concurrent readers share one snapshot
//! without copying.
//!
//! Recency is tracked with a logical tick (a monotone counter), not
//! wall time — the serving path performs no clock reads, keeping the
//! crate inside the workspace's determinism lint budget.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use wmtree::{ExperimentResults, Report};
use wmtree_telemetry::counter;

/// One cached replay: the results and the report generated from them.
#[derive(Debug)]
pub struct CachedReplay {
    /// Quoted strong ETag: the bundle content hash in double quotes.
    pub etag: String,
    /// The replayed experiment results (for diff endpoints).
    pub results: ExperimentResults,
    /// The report generated from `results` (for report/CSV endpoints).
    pub report: Report,
}

#[derive(Debug)]
struct Entry {
    last_used: u64,
    replay: Arc<CachedReplay>,
}

/// LRU cache of replays, keyed by bundle content hash.
#[derive(Debug)]
pub struct ReplayCache {
    capacity: usize,
    tick: AtomicU64,
    inner: Mutex<BTreeMap<String, Entry>>,
}

impl ReplayCache {
    /// A cache holding at most `capacity` replays (min 1).
    pub fn new(capacity: usize) -> ReplayCache {
        ReplayCache {
            capacity: capacity.max(1),
            tick: AtomicU64::new(0),
            inner: Mutex::new(BTreeMap::new()),
        }
    }

    /// Look up a bundle hash, counting exactly one
    /// `server.replay.cache.hit` or `server.replay.cache.miss`.
    pub fn lookup(&self, hash: &str) -> Option<Arc<CachedReplay>> {
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock();
        match inner.get_mut(hash) {
            Some(entry) => {
                entry.last_used = tick;
                counter!("server.replay.cache.hit").inc();
                Some(Arc::clone(&entry.replay))
            }
            None => {
                counter!("server.replay.cache.miss").inc();
                None
            }
        }
    }

    /// Insert a replay, evicting the least-recently-used entry when
    /// over capacity. If another thread raced the same hash in first,
    /// its snapshot wins (the two are identical anyway — the hash is
    /// content-derived) so all readers share one `Arc`.
    pub fn insert(&self, hash: String, replay: Arc<CachedReplay>) -> Arc<CachedReplay> {
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock();
        if let Some(existing) = inner.get_mut(&hash) {
            existing.last_used = tick;
            return Arc::clone(&existing.replay);
        }
        inner.insert(
            hash,
            Entry {
                last_used: tick,
                replay: Arc::clone(&replay),
            },
        );
        while inner.len() > self.capacity {
            let oldest = inner
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("cache over capacity implies at least one entry");
            inner.remove(&oldest);
            counter!("server.replay.cache.evict").inc();
        }
        replay
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One shared Tiny run — the cache only cares about keys and
    /// `Arc` identity, not which results an entry holds.
    fn replay(etag: &str) -> Arc<CachedReplay> {
        static RESULTS: std::sync::OnceLock<ExperimentResults> = std::sync::OnceLock::new();
        let results = RESULTS
            .get_or_init(|| {
                wmtree::Experiment::new(wmtree::ExperimentConfig::at_scale(wmtree::Scale::Tiny))
                    .run()
            })
            .clone();
        let report = Report::generate(&results);
        Arc::new(CachedReplay {
            etag: format!("\"{etag}\""),
            results,
            report,
        })
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = ReplayCache::new(2);
        cache.insert("a".into(), replay("a"));
        cache.insert("b".into(), replay("b"));
        assert!(cache.lookup("a").is_some()); // refresh a
        cache.insert("c".into(), replay("c")); // evicts b
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup("a").is_some());
        assert!(cache.lookup("b").is_none());
        assert!(cache.lookup("c").is_some());
    }

    #[test]
    fn racing_inserts_share_one_snapshot() {
        let cache = ReplayCache::new(2);
        let first = cache.insert("a".into(), replay("a"));
        let second = cache.insert("a".into(), replay("a"));
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(cache.len(), 1);
    }
}
