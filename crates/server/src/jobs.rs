//! The persistent crawl-job queue: `JOBS.json`.
//!
//! The job store root is a directory holding one `JOBS.json` plus one
//! bundle subdirectory per job (`job-000`, `job-001`, ...). `JOBS.json`
//! follows the same crash-safety discipline as a bundle's
//! `MANIFEST.json` and a shard plan's `SHARDS.json`: every mutation
//! rewrites the whole file atomically (temp file + rename), so the
//! store is always a consistent snapshot and never a torn write.
//!
//! Crash recovery is a consequence of two facts: a job's *bundle* is
//! resumable (checkpointed per site, byte-identical after resume), and
//! a job left in [`JobState::Running`] by a dead process is flipped to
//! [`JobState::Interrupted`] on [`JobStore::open`] — which makes it
//! claimable again. Re-running an interrupted job picks the crawl up
//! from the bundle's last checkpoint, so no work is lost and the final
//! archive is byte-identical to an uninterrupted run.

use crate::error::ServerError;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use wmtree::{ExperimentConfig, Scale};

/// Job store file name within the store root.
pub const JOBS_FILE: &str = "JOBS.json";

/// Format version this build reads and writes.
pub const JOBS_VERSION: u32 = 1;

/// What a client asks for when submitting a job.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Scale preset name (see `Scale::NAMES`).
    pub scale: String,
    /// Universe seed override (default: the scale preset's seed).
    pub seed: Option<u64>,
    /// Crawl worker threads override. Never affects results — crawls
    /// are deterministic across worker counts — only wall time.
    pub workers: Option<usize>,
}

impl JobSpec {
    /// Resolve the spec into a full experiment configuration, or a
    /// located error naming the invalid field.
    pub fn config(&self) -> Result<ExperimentConfig, ServerError> {
        let scale = Scale::parse(&self.scale).map_err(ServerError::bad_request)?;
        let mut config = ExperimentConfig::at_scale(scale);
        if let Some(seed) = self.seed {
            config.universe.seed = seed;
        }
        if let Some(workers) = self.workers {
            config.workers = workers.max(1);
        }
        Ok(config)
    }
}

/// Lifecycle state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobState {
    /// Submitted, not yet picked up by a job worker.
    Queued,
    /// A worker is crawling it right now (or the process holding it
    /// died — resolved to `Interrupted` on the next store open).
    Running,
    /// Stopped between batches (drain shutdown or crash recovery);
    /// claimable again, resumes from the bundle's last checkpoint.
    Interrupted,
    /// Crawl complete, bundle finished and content-hashed.
    Done,
    /// The job errored; `error` on the record says why.
    Failed,
}

impl JobState {
    /// Is this a state no worker will move the job out of?
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Failed)
    }

    /// Lowercase label used in JSON-facing summaries and lint output.
    pub fn label(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Interrupted => "interrupted",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }
}

/// One job in the store.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// Dense id: the n-th submitted job has id `n`.
    pub id: usize,
    /// What was asked for.
    pub spec: JobSpec,
    /// Lifecycle state.
    pub state: JobState,
    /// Bundle subdirectory, relative to the store root (`job-000`).
    pub dir: String,
    /// Sites checkpointed so far.
    pub sites_done: usize,
    /// Sites in the job's universe (0 until first claimed).
    pub sites_total: usize,
    /// Content hash of the finished bundle; set exactly when the job
    /// reaches [`JobState::Done`]. This is the ETag of everything
    /// served from the job.
    pub bundle_hash: Option<String>,
    /// Failure message; set exactly when the job reaches
    /// [`JobState::Failed`].
    pub error: Option<String>,
}

/// The `JOBS.json` document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobsFile {
    /// Format version ([`JOBS_VERSION`]).
    pub version: u32,
    /// All jobs ever submitted, in submission (= id) order.
    pub jobs: Vec<JobRecord>,
}

/// The persistent job queue over one store root.
#[derive(Debug)]
pub struct JobStore {
    root: PathBuf,
    inner: Mutex<JobsFile>,
}

impl JobStore {
    /// Path of the `JOBS.json` under a store root.
    pub fn jobs_path(root: &Path) -> PathBuf {
        root.join(JOBS_FILE)
    }

    /// Open (or initialize) the job store at `root`, creating the
    /// directory if needed. Jobs left `Running` by a dead process are
    /// flipped to `Interrupted` so they get claimed and resumed;
    /// returns the store and how many jobs were recovered that way.
    pub fn open(root: &Path) -> Result<(JobStore, usize), ServerError> {
        if root.exists() && !root.is_dir() {
            return Err(ServerError::RootNotADirectory {
                path: root.to_path_buf(),
            });
        }
        std::fs::create_dir_all(root).map_err(|e| ServerError::io(root.display(), e))?;
        let path = JobStore::jobs_path(root);
        let mut file = if path.is_file() {
            let text =
                std::fs::read_to_string(&path).map_err(|e| ServerError::io(path.display(), e))?;
            let file: JobsFile =
                serde_json::from_str(&text).map_err(|e| ServerError::json(path.display(), e))?;
            if file.version != JOBS_VERSION {
                return Err(ServerError::UnsupportedVersion {
                    found: file.version,
                    supported: JOBS_VERSION,
                });
            }
            file
        } else {
            JobsFile {
                version: JOBS_VERSION,
                jobs: Vec::new(),
            }
        };
        let mut recovered = 0;
        for job in &mut file.jobs {
            if job.state == JobState::Running {
                job.state = JobState::Interrupted;
                recovered += 1;
            }
        }
        let store = JobStore {
            root: root.to_path_buf(),
            inner: Mutex::new(file),
        };
        store.persist(&store.inner.lock())?;
        Ok((store, recovered))
    }

    /// The store root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The bundle directory of a job.
    pub fn bundle_dir(&self, job: &JobRecord) -> PathBuf {
        self.root.join(&job.dir)
    }

    /// Append a new queued job and persist. The spec is validated
    /// (scale name resolves) before anything is written.
    pub fn submit(&self, spec: JobSpec) -> Result<JobRecord, ServerError> {
        spec.config()?;
        let mut file = self.inner.lock();
        let id = file.jobs.len();
        let job = JobRecord {
            id,
            spec,
            state: JobState::Queued,
            dir: format!("job-{id:03}"),
            sites_done: 0,
            sites_total: 0,
            bundle_hash: None,
            error: None,
        };
        file.jobs.push(job.clone());
        self.persist(&file)?;
        Ok(job)
    }

    /// Snapshot of one job.
    pub fn get(&self, id: usize) -> Result<JobRecord, ServerError> {
        let file = self.inner.lock();
        file.jobs.get(id).cloned().ok_or(ServerError::UnknownJob {
            id,
            n_jobs: file.jobs.len(),
        })
    }

    /// Snapshot of every job, in id order.
    pub fn list(&self) -> Vec<JobRecord> {
        self.inner.lock().jobs.clone()
    }

    /// Claim the lowest-id claimable job (`Queued` or `Interrupted`),
    /// marking it `Running` and persisting. `None` when the queue is
    /// drained.
    pub fn claim_next(&self) -> Result<Option<JobRecord>, ServerError> {
        let mut file = self.inner.lock();
        let Some(job) = file
            .jobs
            .iter_mut()
            .find(|j| matches!(j.state, JobState::Queued | JobState::Interrupted))
        else {
            return Ok(None);
        };
        job.state = JobState::Running;
        let claimed = job.clone();
        self.persist(&file)?;
        Ok(Some(claimed))
    }

    /// Mutate one job under the store lock and persist the result.
    pub fn update<F>(&self, id: usize, f: F) -> Result<JobRecord, ServerError>
    where
        F: FnOnce(&mut JobRecord),
    {
        let mut file = self.inner.lock();
        let n_jobs = file.jobs.len();
        let job = file
            .jobs
            .get_mut(id)
            .ok_or(ServerError::UnknownJob { id, n_jobs })?;
        f(job);
        let updated = job.clone();
        self.persist(&file)?;
        Ok(updated)
    }

    /// Atomically rewrite `JOBS.json`: serialize to a temp file in the
    /// store root, then rename over the real file.
    fn persist(&self, file: &JobsFile) -> Result<(), ServerError> {
        let body = serde_json::to_string_pretty(file)
            .map_err(|e| ServerError::json("serializing JOBS.json", e))?;
        let tmp = self.root.join(format!(".{JOBS_FILE}.tmp"));
        std::fs::write(&tmp, format!("{body}\n")).map_err(|e| ServerError::io(tmp.display(), e))?;
        let path = JobStore::jobs_path(&self.root);
        std::fs::rename(&tmp, &path).map_err(|e| ServerError::io(path.display(), e))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("wmtree-server-jobs-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn spec(scale: &str) -> JobSpec {
        JobSpec {
            scale: scale.to_string(),
            seed: None,
            workers: Some(1),
        }
    }

    #[test]
    fn submit_assigns_dense_ids_and_persists() {
        let root = tmp("submit");
        let (store, recovered) = JobStore::open(&root).unwrap();
        assert_eq!(recovered, 0);
        let a = store.submit(spec("tiny")).unwrap();
        let b = store.submit(spec("small")).unwrap();
        assert_eq!((a.id, b.id), (0, 1));
        assert_eq!(a.dir, "job-000");
        assert_eq!(b.state, JobState::Queued);

        // Reopen from disk: same contents.
        let (store2, _) = JobStore::open(&root).unwrap();
        assert_eq!(store2.list(), store.list());
    }

    #[test]
    fn submit_rejects_unknown_scale_without_writing() {
        let root = tmp("reject");
        let (store, _) = JobStore::open(&root).unwrap();
        let err = store.submit(spec("paper")).unwrap_err();
        assert!(matches!(err, ServerError::BadRequest { .. }), "{err}");
        assert!(err.to_string().contains("paper"), "{err}");
        assert!(store.list().is_empty());
    }

    #[test]
    fn claim_marks_running_and_reopen_recovers_to_interrupted() {
        let root = tmp("claim");
        let (store, _) = JobStore::open(&root).unwrap();
        store.submit(spec("tiny")).unwrap();
        store.submit(spec("tiny")).unwrap();

        let claimed = store.claim_next().unwrap().unwrap();
        assert_eq!(claimed.id, 0);
        assert_eq!(store.get(0).unwrap().state, JobState::Running);

        // Simulate a crash: the process dies while job 0 is Running.
        // A fresh open flips it to Interrupted — claimable again, and
        // claimed *before* the queued job 1.
        let (store2, recovered) = JobStore::open(&root).unwrap();
        assert_eq!(recovered, 1);
        assert_eq!(store2.get(0).unwrap().state, JobState::Interrupted);
        let reclaimed = store2.claim_next().unwrap().unwrap();
        assert_eq!(reclaimed.id, 0);
    }

    #[test]
    fn update_transitions_and_unknown_ids_error() {
        let root = tmp("update");
        let (store, _) = JobStore::open(&root).unwrap();
        store.submit(spec("tiny")).unwrap();
        let done = store
            .update(0, |j| {
                j.state = JobState::Done;
                j.bundle_hash = Some("00ff00ff00ff00ff".to_string());
            })
            .unwrap();
        assert!(done.state.is_terminal());
        let err = store.get(7).unwrap_err();
        assert!(matches!(err, ServerError::UnknownJob { id: 7, n_jobs: 1 }));
        assert!(err.to_string().contains("no such job 7"), "{err}");
    }

    #[test]
    fn version_gate() {
        let root = tmp("version");
        std::fs::create_dir_all(&root).unwrap();
        std::fs::write(
            JobStore::jobs_path(&root),
            "{\"version\": 99, \"jobs\": []}",
        )
        .unwrap();
        assert!(matches!(
            JobStore::open(&root),
            Err(ServerError::UnsupportedVersion {
                found: 99,
                supported: JOBS_VERSION
            })
        ));
    }
}
