//! `wmtree-lint` — the CLI for all three analysis layers.
//!
//! ```sh
//! wmtree-lint lint                        # source + taint lints, parallel + cached
//! wmtree-lint lint --format json          # stable JSON (byte-identical runs)
//! wmtree-lint lint --format sarif         # SARIF 2.1.0 for CI annotation
//! wmtree-lint lint --workers 8            # explicit fan-out (output identical)
//! wmtree-lint lint --no-cache             # ignore the incremental cache
//! wmtree-lint lint --deny-warnings        # CI mode: warnings fail too
//! wmtree-lint lint --write-baseline       # grandfather current findings
//! wmtree-lint check-artifacts PATH...     # layer-2 checks on JSON artifacts
//! #                                         (a directory = a bundle archive)
//! wmtree-lint rules                       # print the rule catalog
//! wmtree-lint --explain WM0301            # one code's full description
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use wmtree_lint::artifact;
use wmtree_lint::baseline::Baseline;
use wmtree_lint::diag::{sort_diagnostics, Diagnostic, Severity};
use wmtree_lint::engine::{lint_workspace_with, LintOptions};
use wmtree_lint::render::{render_json, render_pretty, render_summary};
use wmtree_lint::rules::catalog;
use wmtree_lint::sarif::render_sarif;
use wmtree_lint::taint;

/// Default baseline location, relative to the workspace root.
const BASELINE_FILE: &str = "lint-baseline.txt";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => cmd_lint(&args[1..]),
        Some("check-artifacts") => cmd_check_artifacts(&args[1..]),
        Some("rules") => cmd_rules(),
        Some("--explain") | Some("explain") => cmd_explain(args.get(1).map(String::as_str)),
        Some("--help") | Some("-h") | None => {
            print_help();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("error: unknown subcommand `{other}`\n");
            print_help();
            ExitCode::from(2)
        }
    }
}

fn print_help() {
    println!(
        "wmtree-lint — determinism-and-invariant static analysis\n\n\
         USAGE:\n  wmtree-lint lint [--root DIR] [--format pretty|json|sarif] \
         [--baseline FILE]\n                   [--workers N] [--no-cache] [--cache-file FILE]\n\
         \x20                  [--deny-warnings] [--write-baseline]\n  \
         wmtree-lint check-artifacts [--format pretty|json|sarif] [--deny-warnings] PATH...\n  \
         wmtree-lint rules\n  \
         wmtree-lint --explain CODE\n\n\
         Layers: WM01xx source lints, WM02xx artifact checks, WM03xx cross-crate\n\
         determinism taint analysis (source -> ... -> sink call paths).\n\n\
         Artifact files are JSON: a DepTree, a CrawlDb, a UniverseConfig, or a\n\
         BrowserConfig (the kind is detected from the document's fields).\n\
         A directory is checked as a bundle archive (MANIFEST.json + segments)."
    );
}

/// Output format shared by both finding-emitting subcommands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OutputFormat {
    Pretty,
    Json,
    Sarif,
}

/// Shared flag parsing for both subcommands.
struct CommonArgs {
    format: OutputFormat,
    deny_warnings: bool,
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    write_baseline: bool,
    workers: Option<usize>,
    no_cache: bool,
    cache_file: Option<PathBuf>,
    positional: Vec<String>,
}

fn parse_args(args: &[String]) -> Result<CommonArgs, String> {
    let mut out = CommonArgs {
        format: OutputFormat::Pretty,
        deny_warnings: false,
        root: None,
        baseline: None,
        write_baseline: false,
        workers: None,
        no_cache: false,
        cache_file: None,
        positional: Vec::new(),
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--format" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("json") => out.format = OutputFormat::Json,
                    Some("pretty") => out.format = OutputFormat::Pretty,
                    Some("sarif") => out.format = OutputFormat::Sarif,
                    other => {
                        return Err(format!("--format needs pretty|json|sarif, got {other:?}"))
                    }
                }
            }
            "--deny-warnings" => out.deny_warnings = true,
            "--write-baseline" => out.write_baseline = true,
            "--no-cache" => out.no_cache = true,
            "--workers" => {
                i += 1;
                match args.get(i).and_then(|w| w.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => out.workers = Some(n),
                    _ => return Err("--workers needs an integer >= 1".into()),
                }
            }
            "--cache-file" => {
                i += 1;
                match args.get(i) {
                    Some(f) => out.cache_file = Some(PathBuf::from(f)),
                    None => return Err("--cache-file needs a file".into()),
                }
            }
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => out.root = Some(PathBuf::from(dir)),
                    None => return Err("--root needs a directory".into()),
                }
            }
            "--baseline" => {
                i += 1;
                match args.get(i) {
                    Some(f) => out.baseline = Some(PathBuf::from(f)),
                    None => return Err("--baseline needs a file".into()),
                }
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            pos => out.positional.push(pos.to_string()),
        }
        i += 1;
    }
    Ok(out)
}

/// Find the workspace root: the nearest ancestor of the current
/// directory whose `Cargo.toml` declares `[workspace]`.
fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn cmd_lint(args: &[String]) -> ExitCode {
    let parsed = match parse_args(args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let Some(root) = parsed.root.clone().or_else(find_root) else {
        eprintln!("error: no workspace root found (run inside the repo or pass --root)");
        return ExitCode::from(2);
    };
    let baseline_path = parsed
        .baseline
        .clone()
        .unwrap_or_else(|| root.join(BASELINE_FILE));
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => Baseline::parse(&text),
        Err(_) => Baseline::empty(),
    };
    let options = LintOptions {
        workers: parsed.workers.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }),
        use_cache: !parsed.no_cache,
        cache_path: parsed.cache_file.clone(),
    };
    let outcome = match lint_workspace_with(&root, &baseline, &options) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: workspace scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    if parsed.write_baseline {
        let mut lines: Vec<String> = outcome
            .findings
            .iter()
            .filter_map(Baseline::format_entry)
            .collect();
        lines.sort();
        let header = "# wmtree-lint baseline — findings deliberately grandfathered.\n\
                      # Format: CODE path :: offending line (trimmed). Keep this file empty\n\
                      # if possible; every entry needs a justification in its PR.\n";
        let body = format!("{header}{}", lines.join("\n"));
        let body = if lines.is_empty() {
            header.to_string()
        } else {
            format!("{body}\n")
        };
        if let Err(e) = std::fs::write(&baseline_path, body) {
            eprintln!(
                "error: cannot write baseline {}: {e}",
                baseline_path.display()
            );
            return ExitCode::from(2);
        }
        eprintln!(
            "wrote {} entr(ies) to {}",
            lines.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }
    if parsed.format == OutputFormat::Pretty {
        eprintln!(
            "scanned {} files ({} suppressed inline, {} baselined, \
             cache: {} hit(s) / {} miss(es))",
            outcome.files_scanned,
            outcome.suppressed,
            outcome.baselined,
            outcome.cache_hits,
            outcome.cache_misses
        );
    }
    emit(&outcome.findings, parsed.format, parsed.deny_warnings)
}

fn cmd_check_artifacts(args: &[String]) -> ExitCode {
    let parsed = match parse_args(args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if parsed.positional.is_empty() {
        eprintln!("error: check-artifacts needs at least one JSON artifact file");
        return ExitCode::from(2);
    }
    let mut diags = Vec::new();
    for file in &parsed.positional {
        let path = Path::new(file);
        // A directory is a bundle archive; anything else is a JSON file.
        if path.is_dir() {
            // A directory holding JOBS.json is a server job store, one
            // holding SHARDS.json is a shard plan (each checked with
            // its per-job/per-shard bundles); anything else is a
            // bundle.
            let check = if path.join(wmtree_server::JOBS_FILE).is_file() {
                artifact::check_jobs_dir(path, file)
            } else if path.join(wmtree_shard::SHARDS_FILE).is_file() {
                artifact::check_shard_dir(path, file)
            } else {
                artifact::check_bundle(path, file)
            };
            match check {
                Ok(found) => diags.extend(found),
                Err(e) => {
                    eprintln!("error: {file}: {e}");
                    return ExitCode::from(2);
                }
            }
            continue;
        }
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {file}: {e}");
                return ExitCode::from(2);
            }
        };
        match check_artifact_file(path, &text) {
            Ok(found) => diags.extend(found),
            Err(e) => {
                eprintln!("error: {file}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    sort_diagnostics(&mut diags);
    emit(&diags, parsed.format, parsed.deny_warnings)
}

/// Detect the artifact kind from the document's fields and run the
/// matching layer-2 check.
fn check_artifact_file(path: &Path, text: &str) -> Result<Vec<Diagnostic>, String> {
    let origin = path.display().to_string();
    let value: serde_json::Value =
        serde_json::from_str(text).map_err(|e| format!("not valid JSON: {e}"))?;
    if value.get("by_key").is_some() && value.get("nodes").is_some() {
        let tree: wmtree_tree::DepTree =
            serde_json::from_str(text).map_err(|e| format!("not a DepTree: {e}"))?;
        return Ok(artifact::check_dep_tree(&tree, &origin));
    }
    if value.get("n_profiles").is_some() && value.get("visits").is_some() {
        let db: wmtree_crawler::CrawlDb =
            serde_json::from_str(text).map_err(|e| format!("not a CrawlDb: {e}"))?;
        return Ok(artifact::check_crawl_db(&db, &origin));
    }
    if value.get("sites_per_bucket").is_some() {
        let cfg: wmtree_webgen::UniverseConfig =
            serde_json::from_str(text).map_err(|e| format!("not a UniverseConfig: {e}"))?;
        return Ok(artifact::check_universe_config(&cfg, &origin));
    }
    if value.get("visit_failure_rate").is_some() {
        let cfg: wmtree_browser::BrowserConfig =
            serde_json::from_str(text).map_err(|e| format!("not a BrowserConfig: {e}"))?;
        return Ok(artifact::check_browser_config(&cfg, &origin));
    }
    Err(
        "unrecognized artifact (expected a DepTree, CrawlDb, UniverseConfig, \
         or BrowserConfig JSON document)"
            .into(),
    )
}

fn cmd_rules() -> ExitCode {
    println!("Layer 1 — source lints (WM01xx):");
    for meta in catalog() {
        let scope = match meta.only {
            Some(list) => format!("only: {}", list.join(", ")),
            None if meta.exempt.is_empty() => "all crates".to_string(),
            None => format!("all except: {}", meta.exempt.join(", ")),
        };
        println!(
            "  {} {:<20} {:<9} [{}] {}",
            meta.code.as_str(),
            meta.name,
            meta.severity.label(),
            scope,
            meta.summary
        );
    }
    println!("\nLayer 2 — artifact checks (WM02xx):");
    for (code, name, summary) in artifact::ARTIFACT_CHECKS {
        println!("  {code} {name:<22} {summary}");
    }
    println!("\nLayer 3 — determinism taint analysis (WM03xx):");
    for meta in taint::catalog() {
        println!(
            "  {} {:<24} {:<9} {}",
            meta.code.as_str(),
            meta.name,
            meta.severity.label(),
            meta.summary
        );
    }
    ExitCode::SUCCESS
}

/// `--explain CODE`: one code's full description.
fn cmd_explain(code: Option<&str>) -> ExitCode {
    let Some(code) = code else {
        eprintln!("error: --explain needs a code (e.g. WM0301)");
        return ExitCode::from(2);
    };
    for meta in catalog() {
        if meta.code.as_str() == code {
            println!("{} ({}) — {}", meta.code.as_str(), meta.name, meta.summary);
            println!("severity: {}", meta.severity.label());
            println!("layer: 1 (source lint)");
            println!("rationale: {}", meta.rationale);
            return ExitCode::SUCCESS;
        }
    }
    for (c, name, summary) in artifact::ARTIFACT_CHECKS {
        if *c == code {
            println!("{c} ({name}) — {summary}");
            println!("layer: 2 (artifact check)");
            return ExitCode::SUCCESS;
        }
    }
    for meta in taint::catalog() {
        if meta.code.as_str() == code {
            println!("{} ({}) — {}", meta.code.as_str(), meta.name, meta.summary);
            println!("severity: {}", meta.severity.label());
            println!("layer: 3 (determinism taint analysis)");
            println!("rationale: {}", meta.rationale);
            println!(
                "sources: wall-clock reads, hash iteration, entropy RNG, env reads, \
                 raw thread spawns (the WM01xx detectors, crate exemptions ignored)"
            );
            println!(
                "sinks: serde_json::to_string/to_string_pretty/to_writer/to_vec, \
                 fs::write, fs::rename, File::create, write_all, write_fmt \
                 (outside telemetry/bench)"
            );
            println!(
                "sanitizers: canonical sorts / total_cmp / BTree collections, \
                 stable_hash, seeded RNG constructors (from_seed, seed_from_u64, \
                 SeedMixer)"
            );
            return ExitCode::SUCCESS;
        }
    }
    eprintln!("error: unknown code `{code}` (see `wmtree-lint rules`)");
    ExitCode::from(2)
}

/// Render findings and pick the exit code.
fn emit(diags: &[Diagnostic], format: OutputFormat, deny_warnings: bool) -> ExitCode {
    match format {
        OutputFormat::Json => print!("{}", render_json(diags)),
        OutputFormat::Sarif => print!("{}", render_sarif(diags)),
        OutputFormat::Pretty => {
            print!("{}", render_pretty(diags));
            eprintln!("{}", render_summary(diags));
        }
    }
    let errors = diags.iter().any(|d| d.severity == Severity::Error);
    let warnings = diags.iter().any(|d| d.severity == Severity::Warning);
    if errors || (deny_warnings && warnings) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
