//! `wmtree-lint` — determinism-and-invariant static analysis for the
//! wmtree workspace.
//!
//! The paper's argument (Demir et al., IMC 2023) rests on separating
//! *setup-induced* differences from the Web's own non-determinism, so
//! this reproduction is only credible if the pipeline is provably
//! deterministic under a fixed seed. PR 1's byte-identity tests caught
//! wall-clock time and hash-iteration order leaking into results once;
//! this crate forbids those bug classes *statically* instead of
//! catching each instance per-test.
//!
//! Two layers share one diagnostics core ([`diag`]):
//!
//! * **Layer 1 — source lints** (`WM01xx`, [`rules`] + [`engine`]): a
//!   token-level Rust lexer ([`lexer`]) scans every workspace crate and
//!   enforces the project invariants — no wall-clock reads outside
//!   telemetry/bench, no hash-order iteration in result-producing
//!   crates, no entropy-seeded RNGs, no environment dependence, no
//!   `unwrap()`/`expect()` in pipeline code.
//! * **Layer 2 — artifact checks** (`WM02xx`, [`artifact`]): the same
//!   diagnostics validate built artifacts — `DepTree` structure,
//!   `CrawlDb` referential integrity, configuration ranges.
//! * **Layer 3 — determinism taint analysis** (`WM03xx`, [`graph`] +
//!   [`taint`]): a workspace-wide pass that builds a cross-crate call
//!   graph from the lexer's symbol tables and proves nondeterminism
//!   sources (reusing the layer-1 detectors, crate exemptions ignored)
//!   cannot flow through function calls into serializing sinks,
//!   rendering the full source→…→sink call path when one does.
//!
//! The engine fans per-file work out via `wmtree_analysis::par::par_map`
//! with a deterministic slot-per-item merge, and caches per-file facts
//! keyed by a `stable_hash` of contents ([`cache`]) so unchanged files
//! skip lexing. Findings also render as SARIF 2.1.0 ([`sarif`]) for CI
//! annotation.
//!
//! Findings render rustc-style ([`render::render_pretty`]) or as stable
//! JSON ([`render::render_json`]); `// wmtree-lint: allow(WMxxxx)`
//! suppresses inline, and a checked-in baseline file
//! ([`baseline::Baseline`]) grandfathers anything deliberately kept.
//!
//! ```
//! use wmtree_lint::lexer::SourceFile;
//! use wmtree_lint::engine::lint_file;
//! use wmtree_lint::rules::all_rules;
//!
//! let src = "fn f() { let t = Instant::now(); }";
//! let file = SourceFile::parse("crates/tree/src/x.rs", "tree", src, false);
//! let (findings, _suppressed) = lint_file(&file, &all_rules());
//! assert_eq!(findings[0].code.as_str(), "WM0101");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod baseline;
pub mod cache;
pub mod diag;
pub mod engine;
pub mod graph;
pub mod lexer;
pub mod render;
pub mod rules;
pub mod sarif;
pub mod taint;

pub use baseline::Baseline;
pub use diag::{Code, Diagnostic, Location, Severity, Span};
pub use engine::{lint_workspace, lint_workspace_with, LintOptions, LintOutcome};
