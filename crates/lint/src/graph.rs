//! Layer-3 inputs: per-file facts and the cross-crate call graph.
//!
//! [`FileFacts`] is everything the taint pass ([`crate::taint`]) needs
//! from one source file, extracted once from the lexed token stream and
//! fully serializable — this is what the incremental cache
//! ([`crate::cache`]) stores so unchanged files skip lexing entirely.
//!
//! [`build_graph`] resolves every call site against the workspace-wide
//! symbol table into a call graph whose node order is canonical (sorted
//! by qualified key, then file, then line), so the taint fixpoint is
//! insensitive to file discovery order. Resolution deliberately
//! under-approximates: a call that cannot be resolved *uniquely* —
//! std/vendor functions, ambiguous method names, turbofish calls —
//! produces no edge rather than a guessed one, and the conservative
//! warnings WM0307/WM0308 surface the cases where that could hide a
//! flow.

use crate::diag::Span;
use crate::lexer::{extract_symbols, SourceFile};
use crate::rules::span_at;
use crate::taint::{classify_sink, sanitized_kinds, source_rules, TaintKind};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One nondeterminism source inside a function body, classified by
/// reusing the WM01xx detectors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SourceHit {
    /// Which taint the source introduces.
    pub kind: TaintKind,
    /// Where the source sits.
    pub span: Span,
    /// The WM01xx message (e.g. "wall-clock read `Instant::now` ...").
    pub detail: String,
}

/// One serialization/write primitive inside a function body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SinkOp {
    /// What the primitive is (`"serde_json::to_string"`, `"fs::write"`,
    /// `"write_all"`, ...).
    pub what: String,
    /// Where the call sits.
    pub span: Span,
}

/// One call site inside a function body, ready for resolution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CallRef {
    /// Path segments, last one the called name.
    pub segments: Vec<String>,
    /// Preceded by `.` — a method call.
    pub is_method: bool,
    /// Where the call sits (spans the whole path).
    pub span: Span,
}

/// One function definition with its taint-relevant facts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FnFact {
    /// Fully-qualified key: `crate::module::…::Type::name`.
    pub key: String,
    /// The function's bare name.
    pub name: String,
    /// Scope segments of `key` without the final name (crate first).
    pub scope: Vec<String>,
    /// 1-based line of the `fn` name.
    pub line: usize,
    /// 1-based column of the `fn` name.
    pub col: usize,
    /// The declaration line's text (for diagnostics anchored at the fn).
    pub line_text: String,
    /// Defined in test context (`#[cfg(test)]`, `tests/`, ...).
    pub is_test: bool,
    /// Nondeterminism sources in the body.
    pub sources: Vec<SourceHit>,
    /// Serialization/write primitives in the body.
    pub sinks: Vec<SinkOp>,
    /// Taint kinds this body sanitizes (canonical sorts, reseeding).
    pub sanitizes: Vec<TaintKind>,
    /// Call sites in the body, in source order.
    pub calls: Vec<CallRef>,
}

/// One `use` import (for alias expansion during resolution).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImportFact {
    /// Full path segments.
    pub segments: Vec<String>,
    /// Locally bound name.
    pub alias: String,
}

/// One inline suppression with the context the taint pass needs to
/// honor it without re-lexing the file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuppressionFact {
    /// 1-based line of the comment.
    pub line: usize,
    /// Codes it allows.
    pub codes: Vec<String>,
    /// The comment trails code on its own line (covers that line only);
    /// otherwise it covers the next line too.
    pub trailing: bool,
    /// The line's text (for WM0310 rendering).
    pub text: String,
    /// The suppression sits in test context.
    pub is_test: bool,
}

impl SuppressionFact {
    /// Does this suppression cover `code` at `line`? Mirrors
    /// [`SourceFile::is_suppressed`].
    pub fn covers(&self, code: &str, line: usize) -> bool {
        let lines_match = if self.trailing {
            self.line == line
        } else {
            self.line == line || self.line + 1 == line
        };
        lines_match && self.codes.iter().any(|c| c == code)
    }
}

/// Everything the taint pass needs from one file. Serializable so the
/// incremental cache can restore it without re-lexing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FileFacts {
    /// Workspace-relative path.
    pub path: String,
    /// Owning crate.
    pub crate_name: String,
    /// Module path derived from the file's location (`foo/bar.rs` →
    /// `["foo", "bar"]`; `lib.rs`/`main.rs`/`mod.rs` contribute none).
    pub module: Vec<String>,
    /// Function facts, in source order.
    pub fns: Vec<FnFact>,
    /// Imports, in source order.
    pub imports: Vec<ImportFact>,
    /// Inline suppressions.
    pub suppressions: Vec<SuppressionFact>,
}

impl FileFacts {
    /// Extract facts from a lexed file: symbol table, per-fn source /
    /// sink / sanitizer classification, imports, suppressions.
    pub fn collect(file: &SourceFile) -> FileFacts {
        let symbols = extract_symbols(&file.tokens);
        let module = module_path_of(&file.path);
        let toks = &file.tokens;

        let mut fns: Vec<FnFact> = Vec::new();
        // Body line ranges aligned with `symbols.fns` (None for
        // signatures, which get no FnFact).
        let mut fact_of_sym: Vec<Option<usize>> = Vec::with_capacity(symbols.fns.len());
        for def in &symbols.fns {
            let Some((open, close)) = def.body else {
                fact_of_sym.push(None);
                continue;
            };
            let mut scope: Vec<String> = Vec::with_capacity(1 + module.len() + def.path.len());
            scope.push(file.crate_name.clone());
            scope.extend(module.iter().cloned());
            scope.extend(def.path.iter().cloned());
            let key = format!("{}::{}", scope.join("::"), def.name);
            let mut sanitizes = sanitized_kinds(&toks[open..=close]);
            sanitizes.sort();
            sanitizes.dedup();
            fact_of_sym.push(Some(fns.len()));
            fns.push(FnFact {
                key,
                name: def.name.clone(),
                scope,
                line: def.line,
                col: def.col,
                line_text: file.line_text(def.line).to_string(),
                is_test: file.is_test(def.line),
                sources: Vec::new(),
                sinks: Vec::new(),
                sanitizes,
                calls: Vec::new(),
            });
        }

        // Sinks and calls, assigned to the innermost enclosing fn.
        for call in &symbols.calls {
            let Some(sym_idx) = symbols.enclosing_fn(call.end_idx) else {
                continue;
            };
            let Some(fact_idx) = fact_of_sym[sym_idx] else {
                continue;
            };
            let span = span_at(file, toks, call.start_idx, call.end_idx);
            if let Some(what) = classify_sink(&call.segments, call.is_method) {
                fns[fact_idx].sinks.push(SinkOp {
                    what,
                    span: span.clone(),
                });
            }
            fns[fact_idx].calls.push(CallRef {
                segments: call.segments.clone(),
                is_method: call.is_method,
                span,
            });
        }

        // Sources: the WM01xx detectors run as classifiers — crate
        // applicability and test exemption deliberately ignored, since
        // a clock read in an *exempt* crate (telemetry) is exactly the
        // cross-crate source the taint pass exists to track.
        for (rule, kind) in source_rules() {
            for d in rule.check(file) {
                let crate::diag::Location::Source(span) = &d.location else {
                    continue;
                };
                let Some(fact_idx) = fns
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| {
                        let Some(Some((open, close))) = symbols
                            .fns
                            .iter()
                            .zip(&fact_of_sym)
                            .find_map(|(def, fi)| (*fi == Some(*i)).then_some(def.body))
                        else {
                            return false;
                        };
                        toks[open].line <= span.line && span.line <= toks[close].line
                    })
                    .map(|(i, _)| i)
                    .next_back()
                else {
                    continue;
                };
                fns[fact_idx].sources.push(SourceHit {
                    kind,
                    span: span.clone(),
                    detail: d.message.clone(),
                });
            }
        }

        FileFacts {
            path: file.path.clone(),
            crate_name: file.crate_name.clone(),
            module,
            fns,
            imports: symbols
                .imports
                .iter()
                .map(|u| ImportFact {
                    segments: u.segments.clone(),
                    alias: u.alias.clone(),
                })
                .collect(),
            suppressions: file
                .suppressions
                .iter()
                .map(|s| SuppressionFact {
                    line: s.line,
                    codes: s.codes.clone(),
                    trailing: file.line_has_code(s.line),
                    text: file.line_text(s.line).to_string(),
                    is_test: file.is_test(s.line),
                })
                .collect(),
        }
    }

    /// Is `code` suppressed at the 1-based line?
    pub fn is_suppressed(&self, code: &str, line: usize) -> bool {
        self.suppressions.iter().any(|s| s.covers(code, line))
    }
}

/// Module path from a workspace-relative file path: the components
/// after the `src`/`tests`/`benches`/`examples` marker, minus
/// `lib`/`main`/`mod` terminals.
pub fn module_path_of(rel: &str) -> Vec<String> {
    let parts: Vec<&str> = rel.split('/').collect();
    let Some(marker) = parts
        .iter()
        .position(|p| matches!(*p, "src" | "tests" | "benches" | "examples"))
    else {
        return Vec::new();
    };
    let mut module: Vec<String> = parts[marker + 1..]
        .iter()
        .map(|p| p.strip_suffix(".rs").unwrap_or(p).to_string())
        .collect();
    if matches!(
        module.last().map(String::as_str),
        Some("lib") | Some("main") | Some("mod")
    ) {
        module.pop();
    }
    module
}

/// One resolved call edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Callee node index.
    pub callee: usize,
    /// Index into the caller [`FnFact::calls`] (for the call-site span).
    pub call: usize,
}

/// The workspace call graph over non-test functions, in canonical node
/// order.
#[derive(Debug)]
pub struct CallGraph {
    /// `(file index, fn index)` into the facts slice, sorted by
    /// `(key, file path, line)` — canonical regardless of input order.
    pub nodes: Vec<(usize, usize)>,
    /// Qualified key per node.
    pub keys: Vec<String>,
    /// Forward edges (caller → callees), sorted per node.
    pub fwd: Vec<Vec<Edge>>,
    /// Reverse adjacency (callee → callers), sorted per node.
    pub rev: Vec<Vec<usize>>,
    /// Per node, per call site: the resolved callee (None = no edge).
    pub resolved: Vec<Vec<Option<usize>>>,
}

impl CallGraph {
    /// The [`FnFact`] behind a node.
    pub fn fact<'a>(&self, facts: &'a [FileFacts], node: usize) -> &'a FnFact {
        let (fi, fni) = self.nodes[node];
        &facts[fi].fns[fni]
    }

    /// The [`FileFacts`] behind a node.
    pub fn file<'a>(&self, facts: &'a [FileFacts], node: usize) -> &'a FileFacts {
        &facts[self.nodes[node].0]
    }
}

/// Map an extern-crate path segment to its workspace crate name
/// (`wmtree_analysis` → `analysis`, `wmtree` → `core`).
fn extern_crate_of(segment: &str) -> Option<String> {
    if segment == "wmtree" {
        return Some("core".to_string());
    }
    segment.strip_prefix("wmtree_").map(|rest| rest.to_string())
}

/// Build the canonical call graph over every non-test fn in `facts`.
/// The result is identical for any permutation of `facts` (and of each
/// file's fns) because nodes are sorted by key before edges resolve.
pub fn build_graph(facts: &[FileFacts]) -> CallGraph {
    let mut nodes: Vec<(usize, usize)> = Vec::new();
    for (fi, file) in facts.iter().enumerate() {
        for (fni, f) in file.fns.iter().enumerate() {
            if !f.is_test {
                nodes.push((fi, fni));
            }
        }
    }
    nodes.sort_by(|&(af, an), &(bf, bn)| {
        let a = &facts[af].fns[an];
        let b = &facts[bf].fns[bn];
        (&a.key, &facts[af].path, a.line).cmp(&(&b.key, &facts[bf].path, b.line))
    });
    let keys: Vec<String> = nodes
        .iter()
        .map(|&(fi, fni)| facts[fi].fns[fni].key.clone())
        .collect();

    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut by_key: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (n, &(fi, fni)) in nodes.iter().enumerate() {
        let f = &facts[fi].fns[fni];
        by_name.entry(f.name.as_str()).or_default().push(n);
        by_key.entry(f.key.as_str()).or_default().push(n);
    }

    let mut fwd: Vec<Vec<Edge>> = vec![Vec::new(); nodes.len()];
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    let mut resolved: Vec<Vec<Option<usize>>> = vec![Vec::new(); nodes.len()];
    for n in 0..nodes.len() {
        let (fi, fni) = nodes[n];
        let caller = &facts[fi].fns[fni];
        let file = &facts[fi];
        for (ci, call) in caller.calls.iter().enumerate() {
            let target = resolve(call, caller, file, fi, &nodes, facts, &by_name, &by_key);
            resolved[n].push(target);
            if let Some(m) = target {
                if m != n {
                    fwd[n].push(Edge {
                        callee: m,
                        call: ci,
                    });
                    rev[m].push(n);
                }
            }
        }
        fwd[n].sort_by_key(|e| (e.callee, e.call));
    }
    for r in &mut rev {
        r.sort_unstable();
        r.dedup();
    }
    CallGraph {
        nodes,
        keys,
        fwd,
        rev,
        resolved,
    }
}

/// Resolve one call site to a node, or `None` if no *unique* target
/// exists.
#[allow(clippy::too_many_arguments)]
fn resolve(
    call: &CallRef,
    caller: &FnFact,
    file: &FileFacts,
    caller_file: usize,
    nodes: &[(usize, usize)],
    facts: &[FileFacts],
    by_name: &BTreeMap<&str, Vec<usize>>,
    by_key: &BTreeMap<&str, Vec<usize>>,
) -> Option<usize> {
    let name = call.segments.last()?;
    let candidates = by_name.get(name.as_str())?;

    // Normalize the path prefix: alias expansion, crate/self/super/Self,
    // extern `wmtree_*` crate names. `None` means a std/vendor path.
    let segs = qualify(&call.segments, caller, file)?;

    if segs.len() == 1 && !call.is_method {
        // Plain call: sibling in the same module beats same file beats
        // same crate beats a globally unique name.
        let sibling = {
            let mut s = caller.scope.clone();
            s.push(name.clone());
            s.join("::")
        };
        if let Some(hits) = by_key.get(sibling.as_str()) {
            if hits.len() == 1 {
                return Some(hits[0]);
            }
            return None;
        }
        let module_key = {
            let mut s = vec![file.crate_name.clone()];
            s.extend(file.module.iter().cloned());
            s.push(name.clone());
            s.join("::")
        };
        if let Some(hits) = by_key.get(module_key.as_str()) {
            if hits.len() == 1 {
                return Some(hits[0]);
            }
            return None;
        }
        return pick_by_scope(candidates, caller_file, &file.crate_name, nodes, facts);
    }

    if call.is_method {
        // Method call: name-only suffix; require a unique target at the
        // closest scope.
        return pick_by_scope(candidates, caller_file, &file.crate_name, nodes, facts);
    }

    // Qualified call: match the normalized path as a key suffix.
    let suffix = segs.join("::");
    let dotted = format!("::{suffix}");
    let matching: Vec<usize> = candidates
        .iter()
        .copied()
        .filter(|&m| {
            let (fi, fni) = nodes[m];
            let key = &facts[fi].fns[fni].key;
            key == &suffix || key.ends_with(&dotted)
        })
        .collect();
    match matching.len() {
        0 => None,
        1 => Some(matching[0]),
        _ => {
            // Prefer an exact key, then a same-crate match.
            let exact: Vec<usize> = matching
                .iter()
                .copied()
                .filter(|&m| {
                    let (fi, fni) = nodes[m];
                    facts[fi].fns[fni].key == suffix
                })
                .collect();
            if exact.len() == 1 {
                return Some(exact[0]);
            }
            let same_crate: Vec<usize> = matching
                .iter()
                .copied()
                .filter(|&m| facts[nodes[m].0].crate_name == file.crate_name)
                .collect();
            if same_crate.len() == 1 {
                return Some(same_crate[0]);
            }
            None
        }
    }
}

/// Unique candidate at the closest scope: same file, then same crate,
/// then anywhere.
fn pick_by_scope(
    candidates: &[usize],
    caller_file: usize,
    caller_crate: &str,
    nodes: &[(usize, usize)],
    facts: &[FileFacts],
) -> Option<usize> {
    let same_file: Vec<usize> = candidates
        .iter()
        .copied()
        .filter(|&m| nodes[m].0 == caller_file)
        .collect();
    if !same_file.is_empty() {
        return (same_file.len() == 1).then_some(same_file[0]);
    }
    let same_crate: Vec<usize> = candidates
        .iter()
        .copied()
        .filter(|&m| facts[nodes[m].0].crate_name == caller_crate)
        .collect();
    if !same_crate.is_empty() {
        return (same_crate.len() == 1).then_some(same_crate[0]);
    }
    (candidates.len() == 1).then_some(candidates[0])
}

/// Normalize a call path's leading segments. Returns `None` when the
/// path is explicitly external (`std::`, `alloc::`).
fn qualify(segments: &[String], caller: &FnFact, file: &FileFacts) -> Option<Vec<String>> {
    let mut segs: Vec<String> = segments.to_vec();
    // Alias expansion: `use wmtree_telemetry::clock;` + `clock::f()`.
    if segs.len() > 1 {
        if let Some(imp) = file.imports.iter().find(|u| u.alias == segs[0]) {
            let mut expanded = imp.segments.clone();
            expanded.extend(segs.drain(1..));
            segs = expanded;
        }
    } else if !segs.is_empty() {
        // A plain name imported directly: `use a::b::f;` + `f()`.
        if let Some(imp) = file
            .imports
            .iter()
            .find(|u| u.alias == segs[0] && u.segments.len() > 1)
        {
            segs = imp.segments.clone();
        }
    }
    match segs.first().map(String::as_str) {
        Some("std") | Some("alloc") => return None,
        Some("crate") => {
            segs[0] = file.crate_name.clone();
        }
        Some("self") => {
            let mut s = vec![file.crate_name.clone()];
            s.extend(file.module.iter().cloned());
            s.extend(segs.drain(1..));
            segs = s;
        }
        Some("super") => {
            let mut s = vec![file.crate_name.clone()];
            let keep = file.module.len().saturating_sub(1);
            s.extend(file.module.iter().take(keep).cloned());
            s.extend(segs.drain(1..));
            segs = s;
        }
        Some("Self") => {
            let mut s = caller.scope.clone();
            s.extend(segs.drain(1..));
            segs = s;
        }
        Some(first) => {
            if let Some(krate) = extern_crate_of(first) {
                segs[0] = krate;
            }
        }
        None => return None,
    }
    Some(segs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn facts(path: &str, crate_name: &str, src: &str) -> FileFacts {
        FileFacts::collect(&SourceFile::parse(path, crate_name, src, false))
    }

    #[test]
    fn module_paths() {
        assert_eq!(
            module_path_of("crates/tree/src/lib.rs"),
            Vec::<String>::new()
        );
        assert_eq!(
            module_path_of("crates/lint/src/rules/mod.rs"),
            vec!["rules"]
        );
        assert_eq!(
            module_path_of("crates/lint/src/rules/wall_clock.rs"),
            vec!["rules", "wall_clock"]
        );
        assert_eq!(module_path_of("src/lib.rs"), Vec::<String>::new());
        assert_eq!(module_path_of("tests/end_to_end.rs"), vec!["end_to_end"]);
    }

    #[test]
    fn collect_classifies_sources_sinks_sanitizers() {
        let src = r#"
pub fn clocky() -> u64 {
    let t = SystemTime::now();
    0
}
pub fn writer(rows: &[u64]) {
    let body = serde_json::to_string(rows);
    std::fs::write("out.json", body);
}
pub fn sorted(mut v: Vec<f64>) -> Vec<f64> {
    v.sort_by(|a, b| a.total_cmp(b));
    v
}
"#;
        let f = facts("crates/core/src/x.rs", "core", src);
        assert_eq!(f.fns.len(), 3);
        assert_eq!(f.fns[0].key, "core::x::clocky");
        assert_eq!(f.fns[0].sources.len(), 1);
        assert_eq!(f.fns[0].sources[0].kind, TaintKind::WallClock);
        let sink_whats: Vec<&str> = f.fns[1].sinks.iter().map(|s| s.what.as_str()).collect();
        assert_eq!(sink_whats, vec!["serde_json::to_string", "fs::write"]);
        assert!(f.fns[2].sanitizes.contains(&TaintKind::HashIter));
    }

    #[test]
    fn graph_resolves_cross_crate_and_local_calls() {
        let clock = facts(
            "crates/telemetry/src/clock.rs",
            "telemetry",
            "pub fn now_ms() -> u64 { 0 }",
        );
        let user = facts(
            "crates/core/src/use_it.rs",
            "core",
            "pub fn sample() -> u64 { wmtree_telemetry::clock::now_ms() + local() }\n\
             fn local() -> u64 { 1 }",
        );
        let all = vec![clock, user];
        let g = build_graph(&all);
        let sample = g
            .keys
            .iter()
            .position(|k| k == "core::use_it::sample")
            .unwrap();
        let callees: Vec<&str> = g.fwd[sample]
            .iter()
            .map(|e| g.keys[e.callee].as_str())
            .collect();
        assert_eq!(
            callees,
            vec!["core::use_it::local", "telemetry::clock::now_ms"]
        );
    }

    #[test]
    fn graph_is_input_order_insensitive() {
        let a = facts("crates/core/src/a.rs", "core", "pub fn f() { g(); }");
        let b = facts("crates/core/src/b.rs", "core", "pub fn g() { h(); }");
        let c = facts("crates/core/src/c.rs", "core", "pub fn h() {}");
        let fwd_of = |order: Vec<FileFacts>| {
            let g = build_graph(&order);
            (g.keys.clone(), g.fwd.clone())
        };
        let x = fwd_of(vec![a.clone(), b.clone(), c.clone()]);
        let y = fwd_of(vec![c, a, b]);
        assert_eq!(x, y);
    }

    #[test]
    fn ambiguous_methods_resolve_to_no_edge() {
        let a = facts(
            "crates/core/src/a.rs",
            "core",
            "impl A { pub fn finish(&self) {} }",
        );
        let b = facts(
            "crates/core/src/b.rs",
            "core",
            "impl B { pub fn finish(&self) {} }\npub fn run(x: &X) { x.finish(); }",
        );
        let all = vec![a, b];
        let g = build_graph(&all);
        let run = g.keys.iter().position(|k| k == "core::b::run").unwrap();
        // `B::finish` is in the same file, so the method resolves there
        // (closest scope); had both been elsewhere it would be dropped.
        let callees: Vec<&str> = g.fwd[run]
            .iter()
            .map(|e| g.keys[e.callee].as_str())
            .collect();
        assert_eq!(callees, vec!["core::b::B::finish"]);
    }

    #[test]
    fn imports_qualify_plain_calls() {
        let provider = facts(
            "crates/telemetry/src/clock.rs",
            "telemetry",
            "pub fn now_ms() -> u64 { 0 }",
        );
        let user = facts(
            "crates/core/src/u.rs",
            "core",
            "use wmtree_telemetry::clock::now_ms;\npub fn f() -> u64 { now_ms() }",
        );
        let all = vec![provider, user];
        let g = build_graph(&all);
        let f = g.keys.iter().position(|k| k == "core::u::f").unwrap();
        let callees: Vec<&str> = g.fwd[f].iter().map(|e| g.keys[e.callee].as_str()).collect();
        assert_eq!(callees, vec!["telemetry::clock::now_ms"]);
    }
}
