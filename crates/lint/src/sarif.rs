//! SARIF 2.1.0 renderer, for CI inline annotation.
//!
//! Like [`crate::render::render_json`], the document is built by hand
//! in a fixed field order so identical findings produce byte-identical
//! SARIF — the uploader diffing two runs must see byte equality, not
//! just semantic equality. The rule metadata of all three layers is
//! embedded as `tool.driver.rules`, so viewers can show each code's
//! summary and rationale without reaching back into the repo.

use crate::diag::{Diagnostic, Location, Severity};
use crate::render::json_str;

/// The SARIF schema this renderer targets.
const SCHEMA: &str = "https://json.schemastore.org/sarif-2.1.0.json";

/// Render a sorted batch as a SARIF 2.1.0 document (one run, one tool).
pub fn render_sarif(diags: &[Diagnostic]) -> String {
    let mut out = String::from("{\"$schema\":");
    json_str(&mut out, SCHEMA);
    out.push_str(",\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{");
    out.push_str("\"name\":\"wmtree-lint\",\"informationUri\":");
    json_str(&mut out, "https://example.invalid/wmtree/DESIGN.md");
    out.push_str(",\"rules\":[");
    let mut first = true;
    for (id, summary, rationale) in rule_descriptions() {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("{\"id\":");
        json_str(&mut out, &id);
        out.push_str(",\"shortDescription\":{\"text\":");
        json_str(&mut out, &summary);
        out.push_str("},\"help\":{\"text\":");
        json_str(&mut out, &rationale);
        out.push_str("}}");
    }
    out.push_str("]}},\"results\":[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"ruleId\":");
        json_str(&mut out, d.code.as_str());
        out.push_str(",\"level\":");
        json_str(
            &mut out,
            match d.severity {
                Severity::Error => "error",
                Severity::Warning => "warning",
            },
        );
        out.push_str(",\"message\":{\"text\":");
        // Notes fold into the message: SARIF viewers show one text blob
        // per result, and the call-path notes are the finding's point.
        let mut text = d.message.clone();
        for note in &d.notes {
            text.push('\n');
            text.push_str("note: ");
            text.push_str(note);
        }
        json_str(&mut out, &text);
        out.push_str("},\"locations\":[{");
        match &d.location {
            Location::Source(s) => {
                out.push_str("\"physicalLocation\":{\"artifactLocation\":{\"uri\":");
                json_str(&mut out, &s.file);
                out.push_str(&format!(
                    "}},\"region\":{{\"startLine\":{},\"startColumn\":{},\"endColumn\":{}}}}}",
                    s.line,
                    s.col,
                    s.col + s.len.max(1)
                ));
            }
            Location::Artifact(p) => {
                out.push_str("\"logicalLocations\":[{\"fullyQualifiedName\":");
                json_str(&mut out, p);
                out.push_str("}]");
            }
        }
        out.push_str("}]}");
    }
    out.push_str("]}]}");
    out.push('\n');
    out
}

/// `(id, summary, rationale)` of every rule across all three layers, in
/// code order.
fn rule_descriptions() -> Vec<(String, String, String)> {
    let mut rules: Vec<(String, String, String)> = crate::rules::catalog()
        .iter()
        .map(|m| {
            (
                m.code.as_str().to_string(),
                m.summary.to_string(),
                m.rationale.to_string(),
            )
        })
        .collect();
    for (code, name, summary) in crate::artifact::ARTIFACT_CHECKS {
        rules.push((
            code.to_string(),
            format!("{name}: {summary}"),
            summary.to_string(),
        ));
    }
    for m in crate::taint::catalog() {
        rules.push((
            m.code.as_str().to_string(),
            m.summary.to_string(),
            m.rationale.to_string(),
        ));
    }
    rules.sort();
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{Code, Diagnostic, Severity, Span};

    fn sample() -> Vec<Diagnostic> {
        vec![
            Diagnostic::source(
                Code("WM0301"),
                Severity::Error,
                Span {
                    file: "crates/core/src/report.rs".into(),
                    line: 4,
                    col: 9,
                    text: "    let tag = annotate();".into(),
                    len: 8,
                },
                "nondeterministic wall-clock time flows into `core::report::write_report`",
            )
            .with_note("tainted call path: a -> b -> c"),
            Diagnostic::artifact(Code("WM0201"), Severity::Warning, "deptree:node[3]", "bad"),
        ]
    }

    #[test]
    fn sarif_shape_and_stability() {
        let a = render_sarif(&sample());
        let b = render_sarif(&sample());
        assert_eq!(a, b, "byte-identical for identical findings");
        assert!(a.contains("\"version\":\"2.1.0\""));
        assert!(a.contains("\"ruleId\":\"WM0301\""));
        assert!(a.contains("\"startLine\":4"));
        assert!(a.contains("note: tainted call path: a -> b -> c"));
        assert!(a.contains("\"fullyQualifiedName\":\"deptree:node[3]\""));
        assert!(a.ends_with('\n'));
        // Every layer's rules are embedded.
        assert!(a.contains("\"id\":\"WM0101\""));
        assert!(a.contains("\"id\":\"WM0201\""));
        assert!(a.contains("\"id\":\"WM0310\""));
    }

    #[test]
    fn sarif_is_valid_json() {
        let doc = render_sarif(&sample());
        let v: serde_json::Value = serde_json::from_str(&doc).expect("valid JSON");
        assert!(v.get("runs").is_some());
    }
}
