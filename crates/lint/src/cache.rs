//! Incremental lint cache: per-file findings and facts keyed by a
//! `stable_hash` of the file's contents.
//!
//! Layer-1 findings and suppression counts are a pure function of one
//! file's bytes (crate name and test-ness ride along in the key via the
//! relative path), so they cache per file. The layer-3 taint pass is
//! cross-file and is *never* cached — instead its per-file inputs
//! ([`FileFacts`]) are, so a warm run skips lexing and rule dispatch
//! entirely and only re-runs the (cheap, in-memory) graph + fixpoint.
//!
//! The cache lives at `target/wmtree-lint-cache.json` by default. It is
//! an optimization, never a source of truth: a missing, corrupt, or
//! fingerprint-mismatched cache degrades to a cold run, and the file is
//! rewritten atomically (temp + rename) from only the files seen this
//! run, so deleted files age out on the next save.

use crate::diag::{Code, Diagnostic, Location, Severity, Span};
use crate::graph::FileFacts;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// Bumped whenever the cached representation or any rule's semantics
/// change, so stale caches self-invalidate.
const FORMAT_VERSION: u32 = 1;

/// Default cache location relative to the workspace root.
pub const DEFAULT_CACHE_PATH: &str = "target/wmtree-lint-cache.json";

/// Seed for content hashing (ASCII "WMLINT").
const HASH_SEED: u64 = 0x574D_4C49_4E54;

/// Hex content hash of a file's bytes.
pub fn content_hash(bytes: &[u8]) -> String {
    format!("{:016x}", wmtree_webgen::stable_hash(HASH_SEED, bytes))
}

/// Fingerprint of the rule set: format version plus every code of every
/// layer. A rule added, removed, or recoded invalidates the whole cache.
pub fn fingerprint() -> String {
    let mut codes: Vec<&str> = crate::rules::catalog()
        .iter()
        .map(|m| m.code.as_str())
        .collect();
    codes.extend(crate::taint::catalog().iter().map(|m| m.code.as_str()));
    format!("v{FORMAT_VERSION}:{}", codes.join(","))
}

/// Map a code string back to its static [`Code`]. Cached diagnostics
/// with unknown codes (from a future version) are dropped.
fn known_code(s: &str) -> Option<Code> {
    crate::rules::catalog()
        .iter()
        .map(|m| m.code)
        .chain(crate::taint::catalog().iter().map(|m| m.code))
        .find(|c| c.as_str() == s)
}

/// One cached source-lint diagnostic (codes as strings — [`Code`] holds
/// a `&'static str` and cannot be deserialized directly).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CachedDiag {
    /// Rule code (`"WM0101"`).
    pub code: String,
    /// `"error"` or `"warning"`.
    pub severity: String,
    /// The source span.
    pub span: Span,
    /// Primary message.
    pub message: String,
    /// Notes.
    pub notes: Vec<String>,
}

impl CachedDiag {
    /// Capture a diagnostic for the cache. Artifact-located diagnostics
    /// never reach here (layer 1 only emits source spans).
    pub fn capture(d: &Diagnostic) -> Option<CachedDiag> {
        let Location::Source(span) = &d.location else {
            return None;
        };
        Some(CachedDiag {
            code: d.code.as_str().to_string(),
            severity: d.severity.label().to_string(),
            span: span.clone(),
            message: d.message.clone(),
            notes: d.notes.clone(),
        })
    }

    /// Restore the diagnostic. `None` if the code is no longer known.
    pub fn restore(&self) -> Option<Diagnostic> {
        let code = known_code(&self.code)?;
        let severity = if self.severity == "warning" {
            Severity::Warning
        } else {
            Severity::Error
        };
        let mut d = Diagnostic::source(code, severity, self.span.clone(), self.message.clone());
        d.notes = self.notes.clone();
        Some(d)
    }
}

/// Everything cached for one file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheEntry {
    /// Content hash the entry is valid for.
    pub hash: String,
    /// Layer-1 findings (post-suppression, pre-baseline).
    pub diags: Vec<CachedDiag>,
    /// Hits silenced by inline allows.
    pub suppressed: u64,
    /// Layer-3 inputs.
    pub facts: FileFacts,
}

/// On-disk shape.
#[derive(Debug, Serialize, Deserialize)]
struct CacheDoc {
    version: u32,
    fingerprint: String,
    files: BTreeMap<String, CacheEntry>,
}

/// The loaded cache plus the entries accumulated this run.
#[derive(Debug)]
pub struct Cache {
    path: PathBuf,
    fingerprint: String,
    old: BTreeMap<String, CacheEntry>,
    new: BTreeMap<String, CacheEntry>,
}

impl Cache {
    /// Load the cache at `path`, tolerating absence, corruption, and
    /// fingerprint mismatch (all degrade to an empty cache).
    pub fn load(path: &Path) -> Cache {
        let fingerprint = fingerprint();
        let old = std::fs::read_to_string(path)
            .ok()
            .and_then(|text| serde_json::from_str::<CacheDoc>(&text).ok())
            .filter(|doc| doc.version == FORMAT_VERSION && doc.fingerprint == fingerprint)
            .map(|doc| doc.files)
            .unwrap_or_default();
        Cache {
            path: path.to_path_buf(),
            fingerprint,
            old,
            new: BTreeMap::new(),
        }
    }

    /// The entry for `rel` if its content hash still matches.
    pub fn lookup(&self, rel: &str, hash: &str) -> Option<&CacheEntry> {
        self.old.get(rel).filter(|e| e.hash == hash)
    }

    /// Record this run's entry for `rel` (hit or fresh — the saved file
    /// holds exactly the files seen this run).
    pub fn record(&mut self, rel: &str, entry: CacheEntry) {
        self.new.insert(rel.to_string(), entry);
    }

    /// Write the cache atomically (temp file + rename). The parent
    /// directory is created if needed.
    pub fn save(&self) -> io::Result<()> {
        if let Some(parent) = self.path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let doc = CacheDoc {
            version: FORMAT_VERSION,
            fingerprint: self.fingerprint.clone(),
            files: self.new.clone(),
        };
        let body = serde_json::to_string(&doc)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let tmp = self.path.with_extension("json.tmp");
        std::fs::write(&tmp, body)?;
        std::fs::rename(&tmp, &self.path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::SourceFile;

    fn entry(src: &str) -> CacheEntry {
        let file = SourceFile::parse("crates/core/src/x.rs", "core", src, false);
        CacheEntry {
            hash: content_hash(src.as_bytes()),
            diags: Vec::new(),
            suppressed: 0,
            facts: FileFacts::collect(&file),
        }
    }

    #[test]
    fn roundtrip_and_invalidation() {
        let dir = std::env::temp_dir().join("wmtree-lint-cache-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.json");
        let src = "pub fn f() -> u64 { 7 }";

        let mut cache = Cache::load(&path);
        assert!(cache
            .lookup("a.rs", &content_hash(src.as_bytes()))
            .is_none());
        cache.record("a.rs", entry(src));
        cache.save().unwrap();

        let cache = Cache::load(&path);
        let hash = content_hash(src.as_bytes());
        let hit = cache.lookup("a.rs", &hash).expect("warm hit");
        assert_eq!(hit.facts.fns[0].key, "core::x::f");
        // A different content hash misses.
        assert!(cache.lookup("a.rs", &content_hash(b"changed")).is_none());

        // Corruption degrades to empty.
        std::fs::write(&path, "{not json").unwrap();
        let cache = Cache::load(&path);
        assert!(cache.lookup("a.rs", &hash).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cached_diag_roundtrip() {
        let span = Span {
            file: "crates/core/src/x.rs".into(),
            line: 3,
            col: 5,
            text: "let t = Instant::now();".into(),
            len: 12,
        };
        let d = Diagnostic::source(Code("WM0101"), Severity::Error, span, "clock").with_note("n");
        let cached = CachedDiag::capture(&d).unwrap();
        assert_eq!(cached.restore().unwrap(), d);

        let unknown = CachedDiag {
            code: "WM9999".into(),
            ..cached
        };
        assert!(unknown.restore().is_none(), "unknown codes are dropped");
    }

    #[test]
    fn fingerprint_covers_all_layers() {
        let fp = fingerprint();
        assert!(fp.contains("WM0101") && fp.contains("WM0310"));
    }
}
