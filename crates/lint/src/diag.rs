//! The diagnostics core shared by both lint layers.
//!
//! A [`Diagnostic`] is one finding: a stable [`Code`], a [`Severity`], a
//! location (a source [`Span`] or an artifact path), a primary message,
//! and optional notes. Renderers ([`crate::render`]) turn a sorted batch
//! of diagnostics into rustc-style text or stable JSON; the ordering
//! defined here ([`Diagnostic::sort_key`]) is what makes repeated runs
//! byte-identical.

/// A stable diagnostic code, e.g. `WM0101`.
///
/// `WM01xx` codes are source lints (layer 1), `WM02xx` codes are
/// artifact checks (layer 2). Codes never change meaning once assigned;
/// retired codes are not reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Code(pub &'static str);

impl Code {
    /// The code as text (`"WM0101"`).
    pub fn as_str(&self) -> &'static str {
        self.0
    }
}

impl std::fmt::Display for Code {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Style or paper-setup deviation; never fails the build.
    Warning,
    /// Determinism or invariant violation; fails `--deny-warnings` runs
    /// and the tier-1 workspace test.
    Error,
}

impl Severity {
    /// Lowercase label used by both renderers.
    pub fn label(&self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// Where a source finding points: `file:line:col` plus the offending
/// line's text (for the rustc-style snippet).
///
/// Serializable so [`crate::cache`] can persist spans inside cached
/// per-file facts.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Span {
    /// Workspace-relative path, `/`-separated on every platform.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column of the first offending character.
    pub col: usize,
    /// The full source line, for snippet rendering.
    pub text: String,
    /// Length of the underlined region (in characters, ≥ 1).
    pub len: usize,
}

/// The location of a finding: a source span or an artifact path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Location {
    /// A position in a source file (layer 1).
    Source(Span),
    /// A logical path into an artifact (layer 2), e.g.
    /// `deptree:node[17]` or `crawldb:a.com/https://www.a.com/page/3`.
    Artifact(String),
}

impl Location {
    /// Human-readable `file:line:col` / artifact-path form.
    pub fn display(&self) -> String {
        match self {
            Location::Source(s) => format!("{}:{}:{}", s.file, s.line, s.col),
            Location::Artifact(p) => p.clone(),
        }
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable rule code.
    pub code: Code,
    /// Severity.
    pub severity: Severity,
    /// Where.
    pub location: Location,
    /// Primary message ("what is wrong").
    pub message: String,
    /// Notes ("why it matters" / "what to do"), rendered as `note:`
    /// lines under the snippet.
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// A source-lint finding.
    pub fn source(code: Code, severity: Severity, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity,
            location: Location::Source(span),
            message: message.into(),
            notes: Vec::new(),
        }
    }

    /// An artifact-check finding.
    pub fn artifact(
        code: Code,
        severity: Severity,
        path: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            code,
            severity,
            location: Location::Artifact(path.into()),
            message: message.into(),
            notes: Vec::new(),
        }
    }

    /// Attach a note (builder style).
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Deterministic ordering: by file/path, then line, column, code.
    /// Sorting every batch by this key before rendering is what makes
    /// `--format json` byte-identical across runs.
    pub fn sort_key(&self) -> (String, usize, usize, &'static str) {
        match &self.location {
            Location::Source(s) => (s.file.clone(), s.line, s.col, self.code.as_str()),
            Location::Artifact(p) => (p.clone(), 0, 0, self.code.as_str()),
        }
    }
}

/// Sort a batch of diagnostics into the canonical (deterministic) order.
pub fn sort_diagnostics(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(file: &str, line: usize, col: usize) -> Span {
        Span {
            file: file.into(),
            line,
            col,
            text: "let x = 1;".into(),
            len: 3,
        }
    }

    #[test]
    fn sort_is_by_file_line_col_code() {
        let mut batch = vec![
            Diagnostic::source(Code("WM0105"), Severity::Error, span("b.rs", 1, 1), "m"),
            Diagnostic::source(Code("WM0101"), Severity::Error, span("a.rs", 9, 2), "m"),
            Diagnostic::source(Code("WM0101"), Severity::Error, span("a.rs", 2, 5), "m"),
            Diagnostic::source(Code("WM0102"), Severity::Error, span("a.rs", 2, 5), "m"),
        ];
        sort_diagnostics(&mut batch);
        let order: Vec<_> = batch
            .iter()
            .map(|d| (d.location.display(), d.code.as_str()))
            .collect();
        assert_eq!(
            order,
            vec![
                ("a.rs:2:5".to_string(), "WM0101"),
                ("a.rs:2:5".to_string(), "WM0102"),
                ("a.rs:9:2".to_string(), "WM0101"),
                ("b.rs:1:1".to_string(), "WM0105"),
            ]
        );
    }

    #[test]
    fn severity_ordering_and_labels() {
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(Severity::Error.label(), "error");
        assert_eq!(Severity::Warning.label(), "warning");
    }

    #[test]
    fn artifact_location_display() {
        let d = Diagnostic::artifact(Code("WM0201"), Severity::Error, "deptree:node[3]", "bad");
        assert_eq!(d.location.display(), "deptree:node[3]");
    }
}
