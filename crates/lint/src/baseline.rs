//! The checked-in baseline: findings that are deliberately grandfathered.
//!
//! Format (one entry per line, `#` comments allowed):
//!
//! ```text
//! WM0105 crates/foo/src/bar.rs :: let x = m.get(k).unwrap();
//! ```
//!
//! An entry matches a finding by `(code, file, trimmed offending line)`
//! — *not* by line number, so baselined findings survive unrelated
//! edits above them. The repository keeps this file empty; the
//! mechanism exists so a future justified exception is an explicit,
//! reviewed diff rather than a weakened rule.

use crate::diag::{Diagnostic, Location};

/// A parsed baseline file.
#[derive(Debug, Default, Clone)]
pub struct Baseline {
    entries: Vec<Entry>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Entry {
    code: String,
    file: String,
    text: String,
}

impl Baseline {
    /// An empty baseline.
    pub fn empty() -> Baseline {
        Baseline::default()
    }

    /// Parse baseline file content. Unparseable lines are ignored — a
    /// malformed baseline can only *fail* the build, never mask a
    /// finding.
    pub fn parse(content: &str) -> Baseline {
        let mut entries = Vec::new();
        for line in content.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((head, text)) = line.split_once(" :: ") else {
                continue;
            };
            let mut parts = head.split_whitespace();
            let (Some(code), Some(file)) = (parts.next(), parts.next()) else {
                continue;
            };
            entries.push(Entry {
                code: code.to_string(),
                file: file.to_string(),
                text: text.trim().to_string(),
            });
        }
        Baseline { entries }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the baseline empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Does an entry cover this finding?
    pub fn covers(&self, d: &Diagnostic) -> bool {
        let Location::Source(span) = &d.location else {
            return false; // artifact findings are never baselined
        };
        let text = span.text.trim();
        self.entries
            .iter()
            .any(|e| e.code == d.code.as_str() && e.file == span.file && e.text == text)
    }

    /// Render a finding as a baseline line (for `--write-baseline`).
    pub fn format_entry(d: &Diagnostic) -> Option<String> {
        match &d.location {
            Location::Source(s) => Some(format!(
                "{} {} :: {}",
                d.code.as_str(),
                s.file,
                s.text.trim()
            )),
            Location::Artifact(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{Code, Severity, Span};

    fn finding(code: &'static str, file: &str, text: &str) -> Diagnostic {
        Diagnostic::source(
            Code(code),
            Severity::Error,
            Span {
                file: file.into(),
                line: 42,
                col: 1,
                text: text.into(),
                len: 1,
            },
            "m",
        )
    }

    #[test]
    fn roundtrip_covers() {
        let d = finding(
            "WM0105",
            "crates/a/src/x.rs",
            "  let v = m.get(k).unwrap();  ",
        );
        let line = Baseline::format_entry(&d).unwrap();
        let b = Baseline::parse(&format!("# header\n\n{line}\n"));
        assert_eq!(b.len(), 1);
        assert!(b.covers(&d));
        // Line number is irrelevant to matching.
        let mut moved = d.clone();
        if let Location::Source(s) = &mut moved.location {
            s.line = 7;
        }
        assert!(b.covers(&moved));
    }

    #[test]
    fn mismatches_do_not_cover() {
        let b = Baseline::parse("WM0105 crates/a/src/x.rs :: let v = m.get(k).unwrap();");
        assert!(!b.covers(&finding(
            "WM0101",
            "crates/a/src/x.rs",
            "let v = m.get(k).unwrap();"
        )));
        assert!(!b.covers(&finding(
            "WM0105",
            "crates/b/src/x.rs",
            "let v = m.get(k).unwrap();"
        )));
        assert!(!b.covers(&finding("WM0105", "crates/a/src/x.rs", "let w = other();")));
    }

    #[test]
    fn malformed_lines_ignored() {
        let b = Baseline::parse("garbage\nWM0105-missing-separator crates/x.rs\n");
        assert!(b.is_empty());
    }
}
