//! The source-lint engine: file discovery, rule dispatch, suppression
//! and baseline filtering.

use crate::baseline::Baseline;
use crate::diag::{sort_diagnostics, Diagnostic, Location};
use crate::lexer::SourceFile;
use crate::rules::{all_rules, Rule};
use std::io;
use std::path::{Path, PathBuf};

/// One file scheduled for linting.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LintTarget {
    /// Absolute path on disk.
    pub abs: PathBuf,
    /// Workspace-relative path (`/`-separated; what diagnostics show).
    pub rel: String,
    /// Owning crate (`"tree"`, ..., `"suite"` for the umbrella crate).
    pub crate_name: String,
    /// Whole file is test/bench/example context.
    pub is_test_file: bool,
}

/// The result of a workspace lint run.
#[derive(Debug, Default)]
pub struct LintOutcome {
    /// Findings that survived suppressions and the baseline, in
    /// canonical (deterministic) order.
    pub findings: Vec<Diagnostic>,
    /// Raw hits silenced by inline `wmtree-lint: allow(..)` comments.
    pub suppressed: usize,
    /// Raw hits absorbed by the baseline file.
    pub baselined: usize,
    /// Files scanned.
    pub files_scanned: usize,
}

/// Discover every lintable file under a workspace root, sorted so runs
/// are deterministic.
///
/// Scanned: `crates/*/src/**` (production), `crates/*/tests|benches/**`
/// (test context), the umbrella `src/**` (production), `tests/**` and
/// `examples/**` (test context). `vendor/` and `target/` are never
/// scanned — the shims are API stand-ins, not pipeline code.
pub fn discover_targets(root: &Path) -> io::Result<Vec<LintTarget>> {
    let mut targets = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            let crate_name = dir
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            collect_rs(root, &dir.join("src"), &crate_name, false, &mut targets)?;
            collect_rs(root, &dir.join("tests"), &crate_name, true, &mut targets)?;
            collect_rs(root, &dir.join("benches"), &crate_name, true, &mut targets)?;
        }
    }
    collect_rs(root, &root.join("src"), "suite", false, &mut targets)?;
    collect_rs(root, &root.join("tests"), "suite", true, &mut targets)?;
    collect_rs(root, &root.join("examples"), "suite", true, &mut targets)?;
    targets.sort();
    Ok(targets)
}

/// Recursively collect `.rs` files under `dir` (silently absent dirs ok).
fn collect_rs(
    root: &Path,
    dir: &Path,
    crate_name: &str,
    is_test: bool,
    out: &mut Vec<LintTarget>,
) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(root, &path, crate_name, is_test, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push(LintTarget {
                abs: path,
                rel,
                crate_name: crate_name.to_string(),
                is_test_file: is_test,
            });
        }
    }
    Ok(())
}

/// Lint one lexed file with a rule set. Returns `(kept, suppressed)`.
pub fn lint_file(file: &SourceFile, rules: &[Box<dyn Rule>]) -> (Vec<Diagnostic>, usize) {
    let mut kept = Vec::new();
    let mut suppressed = 0usize;
    for rule in rules {
        let meta = rule.meta();
        if !meta.applies_to(&file.crate_name) {
            continue;
        }
        for d in rule.check(file) {
            let line = match &d.location {
                Location::Source(s) => s.line,
                Location::Artifact(_) => 0,
            };
            if meta.test_exempt && file.is_test(line) {
                continue;
            }
            if file.is_suppressed(meta.code.as_str(), line) {
                suppressed += 1;
                continue;
            }
            kept.push(d);
        }
    }
    (kept, suppressed)
}

/// Lint the whole workspace under `root` against a baseline.
pub fn lint_workspace(root: &Path, baseline: &Baseline) -> io::Result<LintOutcome> {
    let rules = all_rules();
    let mut outcome = LintOutcome::default();
    for target in discover_targets(root)? {
        let content = std::fs::read_to_string(&target.abs)?;
        let file = SourceFile::parse(
            target.rel.clone(),
            target.crate_name.clone(),
            &content,
            target.is_test_file,
        );
        let (found, suppressed) = lint_file(&file, &rules);
        outcome.suppressed += suppressed;
        for d in found {
            if baseline.covers(&d) {
                outcome.baselined += 1;
            } else {
                outcome.findings.push(d);
            }
        }
        outcome.files_scanned += 1;
    }
    sort_diagnostics(&mut outcome.findings);
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppression_and_test_exemption() {
        let src = "\
fn prod() {
    let a = x.unwrap(); // wmtree-lint: allow(WM0105)
    let b = y.unwrap();
}

#[cfg(test)]
mod tests {
    fn t() {
        let c = z.unwrap();
    }
}";
        let file = SourceFile::parse("crates/analysis/src/x.rs", "analysis", src, false);
        let (kept, suppressed) = lint_file(&file, &all_rules());
        assert_eq!(suppressed, 1, "inline allow silences line 2");
        assert_eq!(kept.len(), 1, "only the bare unwrap on line 3 remains");
        assert_eq!(kept[0].location.display(), "crates/analysis/src/x.rs:3:15");
    }

    #[test]
    fn rule_crate_scoping() {
        // Telemetry may read the clock; tree may not.
        let src = "fn f() { let t = Instant::now(); }";
        let telem = SourceFile::parse("t.rs", "telemetry", src, false);
        let tree = SourceFile::parse("t.rs", "tree", src, false);
        assert!(lint_file(&telem, &all_rules()).0.is_empty());
        assert_eq!(lint_file(&tree, &all_rules()).0.len(), 1);
    }

    #[test]
    fn whole_test_file_exempt_from_unwrap_but_not_clock() {
        let src = "fn helper() { let a = x.unwrap(); let t = Instant::now(); }";
        let f = SourceFile::parse("crates/tree/tests/p.rs", "tree", src, true);
        let (kept, _) = lint_file(&f, &all_rules());
        assert_eq!(kept.len(), 1, "{kept:?}");
        assert_eq!(kept[0].code.as_str(), "WM0101");
    }
}
