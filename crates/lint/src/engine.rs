//! The lint engine: file discovery, per-file rule dispatch (parallel,
//! cached), the workspace-wide taint pass, and suppression/baseline
//! filtering.
//!
//! Per-file work (lex → layer-1 rules → fact extraction) fans out over
//! `wmtree_analysis::par::par_map_min` with the slot-per-item merge, so
//! the output is byte-identical for every worker count — the engine
//! dogfoods the same deterministic-merge rule it lints for. With
//! [`LintOptions::use_cache`], per-file results are keyed by a
//! `stable_hash` of the file's bytes ([`crate::cache`]); the cross-file
//! taint pass always re-runs over the (possibly cached) facts.

use crate::baseline::Baseline;
use crate::cache::{content_hash, Cache, CacheEntry, CachedDiag, DEFAULT_CACHE_PATH};
use crate::diag::{sort_diagnostics, Diagnostic, Location};
use crate::graph::FileFacts;
use crate::lexer::SourceFile;
use crate::rules::{all_rules, Rule};
use crate::taint;
use std::io;
use std::path::{Path, PathBuf};
use wmtree_analysis::par::par_map_min;

/// One file scheduled for linting.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LintTarget {
    /// Absolute path on disk.
    pub abs: PathBuf,
    /// Workspace-relative path (`/`-separated; what diagnostics show).
    pub rel: String,
    /// Owning crate (`"tree"`, ..., `"suite"` for the umbrella crate).
    pub crate_name: String,
    /// Whole file is test/bench/example context.
    pub is_test_file: bool,
}

/// How to run the workspace lint.
#[derive(Debug, Clone)]
pub struct LintOptions {
    /// Worker threads for per-file fan-out (1 = sequential).
    pub workers: usize,
    /// Consult and update the incremental cache.
    pub use_cache: bool,
    /// Cache location; `None` → `target/wmtree-lint-cache.json` under
    /// the workspace root.
    pub cache_path: Option<PathBuf>,
}

impl Default for LintOptions {
    /// Sequential, uncached — the semantics [`lint_workspace`] always
    /// had; the CLI opts into parallelism and caching explicitly.
    fn default() -> Self {
        LintOptions {
            workers: 1,
            use_cache: false,
            cache_path: None,
        }
    }
}

/// The result of a workspace lint run.
#[derive(Debug, Default)]
pub struct LintOutcome {
    /// Findings that survived suppressions and the baseline, in
    /// canonical (deterministic) order.
    pub findings: Vec<Diagnostic>,
    /// Raw hits silenced by inline `wmtree-lint: allow(..)` comments.
    pub suppressed: usize,
    /// Raw hits absorbed by the baseline file.
    pub baselined: usize,
    /// Files scanned.
    pub files_scanned: usize,
    /// Files served from the incremental cache.
    pub cache_hits: usize,
    /// Files lexed and linted fresh.
    pub cache_misses: usize,
}

/// Discover every lintable file under a workspace root, sorted so runs
/// are deterministic.
///
/// Scanned: `crates/*/src/**` (production), `crates/*/tests|benches/**`
/// (test context), the umbrella `src/**` (production), `tests/**` and
/// `examples/**` (test context). `vendor/` and `target/` are never
/// scanned — the shims are API stand-ins, not pipeline code.
pub fn discover_targets(root: &Path) -> io::Result<Vec<LintTarget>> {
    let mut targets = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            let crate_name = dir
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            collect_rs(root, &dir.join("src"), &crate_name, false, &mut targets)?;
            collect_rs(root, &dir.join("tests"), &crate_name, true, &mut targets)?;
            collect_rs(root, &dir.join("benches"), &crate_name, true, &mut targets)?;
        }
    }
    collect_rs(root, &root.join("src"), "suite", false, &mut targets)?;
    collect_rs(root, &root.join("tests"), "suite", true, &mut targets)?;
    collect_rs(root, &root.join("examples"), "suite", true, &mut targets)?;
    targets.sort();
    Ok(targets)
}

/// Recursively collect `.rs` files under `dir` (silently absent dirs ok).
fn collect_rs(
    root: &Path,
    dir: &Path,
    crate_name: &str,
    is_test: bool,
    out: &mut Vec<LintTarget>,
) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(root, &path, crate_name, is_test, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push(LintTarget {
                abs: path,
                rel,
                crate_name: crate_name.to_string(),
                is_test_file: is_test,
            });
        }
    }
    Ok(())
}

/// Lint one lexed file with a rule set. Returns `(kept, suppressed)`.
pub fn lint_file(file: &SourceFile, rules: &[Box<dyn Rule>]) -> (Vec<Diagnostic>, usize) {
    let mut kept = Vec::new();
    let mut suppressed = 0usize;
    for rule in rules {
        let meta = rule.meta();
        if !meta.applies_to(&file.crate_name) {
            continue;
        }
        for d in rule.check(file) {
            let line = match &d.location {
                Location::Source(s) => s.line,
                Location::Artifact(_) => 0,
            };
            if meta.test_exempt && file.is_test(line) {
                continue;
            }
            if file.is_suppressed(meta.code.as_str(), line) {
                suppressed += 1;
                continue;
            }
            kept.push(d);
        }
    }
    (kept, suppressed)
}

/// Per-file result of the fan-out stage.
struct FileResult {
    diags: Vec<Diagnostic>,
    suppressed: usize,
    facts: FileFacts,
    hash: String,
    cache_hit: bool,
}

/// Process one file: from the cache when its content hash matches,
/// freshly otherwise.
fn process_file(target: &LintTarget, content: &str, cache: Option<&Cache>) -> FileResult {
    let hash = content_hash(content.as_bytes());
    if let Some(entry) = cache.and_then(|c| c.lookup(&target.rel, &hash)) {
        return FileResult {
            diags: entry.diags.iter().filter_map(CachedDiag::restore).collect(),
            suppressed: entry.suppressed as usize,
            facts: entry.facts.clone(),
            hash,
            cache_hit: true,
        };
    }
    let file = SourceFile::parse(
        target.rel.clone(),
        target.crate_name.clone(),
        content,
        target.is_test_file,
    );
    let (diags, suppressed) = lint_file(&file, &all_rules());
    FileResult {
        diags,
        suppressed,
        facts: FileFacts::collect(&file),
        hash,
        cache_hit: false,
    }
}

/// Lint the whole workspace under `root` against a baseline, with
/// explicit worker/cache options.
///
/// The per-file stage (layer 1 + fact extraction) fans out and merges
/// slot-per-item; the taint pass (layer 3) then runs once over all
/// facts. Findings are byte-identical for every worker count and for
/// cold vs. warm caches.
pub fn lint_workspace_with(
    root: &Path,
    baseline: &Baseline,
    options: &LintOptions,
) -> io::Result<LintOutcome> {
    let targets = discover_targets(root)?;
    let mut contents: Vec<String> = Vec::with_capacity(targets.len());
    for target in &targets {
        contents.push(std::fs::read_to_string(&target.abs)?);
    }
    let mut cache = if options.use_cache {
        let path = options
            .cache_path
            .clone()
            .unwrap_or_else(|| root.join(DEFAULT_CACHE_PATH));
        Some(Cache::load(&path))
    } else {
        None
    };

    let work: Vec<(usize, &LintTarget)> = targets.iter().enumerate().collect();
    let cache_ref = cache.as_ref();
    // Floor of 8 files per worker: a file is milliseconds of lexing and
    // rule dispatch, so fan-out pays off far below the per-page default.
    let results: Vec<FileResult> = par_map_min(&work, options.workers, 8, |&(i, target)| {
        process_file(target, &contents[i], cache_ref)
    });

    let mut outcome = LintOutcome {
        files_scanned: targets.len(),
        ..LintOutcome::default()
    };
    let mut findings: Vec<Diagnostic> = Vec::new();
    let mut facts: Vec<FileFacts> = Vec::with_capacity(results.len());
    for (target, result) in targets.iter().zip(results) {
        outcome.suppressed += result.suppressed;
        if result.cache_hit {
            outcome.cache_hits += 1;
        } else {
            outcome.cache_misses += 1;
        }
        if let Some(cache) = cache.as_mut() {
            cache.record(
                &target.rel,
                CacheEntry {
                    hash: result.hash.clone(),
                    diags: result
                        .diags
                        .iter()
                        .filter_map(CachedDiag::capture)
                        .collect(),
                    suppressed: result.suppressed as u64,
                    facts: result.facts.clone(),
                },
            );
        }
        findings.extend(result.diags);
        facts.push(result.facts);
    }

    // Layer 3: cross-file, always fresh (the facts may be cached; the
    // graph and fixpoint are cheap and cannot be cached per-file).
    let taint_outcome = taint::analyze(&facts);
    outcome.suppressed += taint_outcome.suppressed;
    findings.extend(taint_outcome.findings);

    for d in findings {
        if baseline.covers(&d) {
            outcome.baselined += 1;
        } else {
            outcome.findings.push(d);
        }
    }
    sort_diagnostics(&mut outcome.findings);

    if let Some(cache) = &cache {
        // Best-effort: a read-only checkout must not fail the lint.
        let _ = cache.save();
    }
    Ok(outcome)
}

/// Lint the whole workspace under `root` against a baseline
/// (sequential, uncached — see [`lint_workspace_with`]).
pub fn lint_workspace(root: &Path, baseline: &Baseline) -> io::Result<LintOutcome> {
    lint_workspace_with(root, baseline, &LintOptions::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppression_and_test_exemption() {
        let src = "\
fn prod() {
    let a = x.unwrap(); // wmtree-lint: allow(WM0105)
    let b = y.unwrap();
}

#[cfg(test)]
mod tests {
    fn t() {
        let c = z.unwrap();
    }
}";
        let file = SourceFile::parse("crates/analysis/src/x.rs", "analysis", src, false);
        let (kept, suppressed) = lint_file(&file, &all_rules());
        assert_eq!(suppressed, 1, "inline allow silences line 2");
        assert_eq!(kept.len(), 1, "only the bare unwrap on line 3 remains");
        assert_eq!(kept[0].location.display(), "crates/analysis/src/x.rs:3:15");
    }

    #[test]
    fn rule_crate_scoping() {
        // Telemetry may read the clock; tree may not.
        let src = "fn f() { let t = Instant::now(); }";
        let telem = SourceFile::parse("t.rs", "telemetry", src, false);
        let tree = SourceFile::parse("t.rs", "tree", src, false);
        assert!(lint_file(&telem, &all_rules()).0.is_empty());
        assert_eq!(lint_file(&tree, &all_rules()).0.len(), 1);
    }

    #[test]
    fn whole_test_file_exempt_from_unwrap_but_not_clock() {
        let src = "fn helper() { let a = x.unwrap(); let t = Instant::now(); }";
        let f = SourceFile::parse("crates/tree/tests/p.rs", "tree", src, true);
        let (kept, _) = lint_file(&f, &all_rules());
        assert_eq!(kept.len(), 1, "{kept:?}");
        assert_eq!(kept[0].code.as_str(), "WM0101");
    }

    #[test]
    fn default_options_are_sequential_and_uncached() {
        let opts = LintOptions::default();
        assert_eq!(opts.workers, 1);
        assert!(!opts.use_cache);
        assert!(opts.cache_path.is_none());
    }
}
