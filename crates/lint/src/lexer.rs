//! A small, dependency-free Rust lexer for the source lints.
//!
//! This is deliberately not a parser: the rules in [`crate::rules`]
//! match token *sequences* (`SystemTime` `::` `now`), so all the lexer
//! must get right is what is and is not a token — comments, string
//! literals (including raw strings), and char-vs-lifetime ambiguity.
//! It also extracts the two pieces of file-level structure the engine
//! needs: which lines are test code (`#[cfg(test)]` / `#[test]` items)
//! and where `// wmtree-lint: allow(...)` suppressions sit.

/// What kind of token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword.
    Ident,
    /// Punctuation. `::` is one token; everything else is one character.
    Punct,
    /// A string/char/numeric literal (contents not preserved verbatim
    /// for strings — rules must never match inside literals).
    Literal,
    /// A lifetime (`'a`).
    Lifetime,
}

/// One token with its position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Kind.
    pub kind: TokenKind,
    /// Token text (for [`TokenKind::Literal`] a placeholder `"<lit>"`).
    pub text: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column (in characters).
    pub col: usize,
}

impl Token {
    fn new(kind: TokenKind, text: impl Into<String>, line: usize, col: usize) -> Token {
        Token {
            kind,
            text: text.into(),
            line,
            col,
        }
    }

    /// Is this an identifier with exactly this text?
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// Is this a punctuation token with exactly this text?
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == text
    }
}

/// An inline suppression comment: `// wmtree-lint: allow(WM0101, ...)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// Line the comment sits on. The suppression covers this line and,
    /// so that it can precede the offending statement, the next one.
    pub line: usize,
    /// The codes it allows.
    pub codes: Vec<String>,
}

/// A lexed source file plus the file-level structure rules need.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path (`/`-separated).
    pub path: String,
    /// Name of the crate the file belongs to (`"tree"`, `"analysis"`,
    /// `"suite"` for the umbrella `src/`).
    pub crate_name: String,
    /// Raw lines, for snippet rendering.
    pub lines: Vec<String>,
    /// The token stream (comments and whitespace removed).
    pub tokens: Vec<Token>,
    /// `is_test_line[line-1]` — inside a `#[cfg(test)]` or `#[test]`
    /// item, or in a file under `tests/`.
    pub is_test_line: Vec<bool>,
    /// Inline `wmtree-lint: allow(...)` suppressions.
    pub suppressions: Vec<Suppression>,
}

impl SourceFile {
    /// Lex `content`. `whole_file_is_test` marks every line as test
    /// context (integration-test and bench files).
    pub fn parse(
        path: impl Into<String>,
        crate_name: impl Into<String>,
        content: &str,
        whole_file_is_test: bool,
    ) -> SourceFile {
        let lines: Vec<String> = content.lines().map(|l| l.to_string()).collect();
        let (tokens, suppressions) = lex(content);
        let mut is_test_line = vec![whole_file_is_test; lines.len()];
        if !whole_file_is_test {
            mark_test_regions(&tokens, &mut is_test_line);
        }
        SourceFile {
            path: path.into(),
            crate_name: crate_name.into(),
            lines,
            tokens,
            is_test_line,
            suppressions,
        }
    }

    /// Is the 1-based line test code?
    pub fn is_test(&self, line: usize) -> bool {
        self.is_test_line
            .get(line.wrapping_sub(1))
            .copied()
            .unwrap_or(false)
    }

    /// Is `code` suppressed at the 1-based line? A trailing suppression
    /// comment covers its own line; a comment alone on its line covers
    /// the next line instead.
    pub fn is_suppressed(&self, code: &str, line: usize) -> bool {
        self.suppressions.iter().any(|s| {
            let covers = if self.line_has_code(s.line) {
                s.line == line
            } else {
                s.line == line || s.line + 1 == line
            };
            covers && s.codes.iter().any(|c| c == code)
        })
    }

    /// Does any token sit on the 1-based line (comments don't count)?
    pub fn line_has_code(&self, line: usize) -> bool {
        self.tokens.iter().any(|t| t.line == line)
    }

    /// The raw text of a 1-based line (empty if out of range).
    pub fn line_text(&self, line: usize) -> &str {
        self.lines
            .get(line.wrapping_sub(1))
            .map(|s| s.as_str())
            .unwrap_or("")
    }
}

/// Tokenize, collecting suppression comments on the way.
fn lex(content: &str) -> (Vec<Token>, Vec<Suppression>) {
    let chars: Vec<char> = content.chars().collect();
    let mut tokens = Vec::new();
    let mut suppressions = Vec::new();
    let mut i = 0;
    let mut line = 1usize;
    let mut col = 1usize;

    // Advance over `n` chars, tracking line/col.
    macro_rules! bump {
        ($n:expr) => {
            for _ in 0..$n {
                if i < chars.len() {
                    if chars[i] == '\n' {
                        line += 1;
                        col = 1;
                    } else {
                        col += 1;
                    }
                    i += 1;
                }
            }
        };
    }

    while i < chars.len() {
        let c = chars[i];
        // Line comment (plain or doc): skip to end of line, but mine it
        // for a suppression directive first.
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start = i;
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            let comment: String = chars[start..i].iter().collect();
            if let Some(codes) = parse_suppression(&comment) {
                suppressions.push(Suppression { line, codes });
            }
            col += i - start;
            continue;
        }
        // Block comment, nesting allowed.
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let mut depth = 0usize;
            while i < chars.len() {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    bump!(2);
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    bump!(2);
                    if depth == 0 {
                        break;
                    }
                } else {
                    bump!(1);
                }
            }
            continue;
        }
        // Whitespace.
        if c.is_whitespace() {
            bump!(1);
            continue;
        }
        // Raw string r"..." / r#"..."# (and br variants).
        if (c == 'r' || c == 'b') && is_raw_string_start(&chars, i) {
            let (tok_line, tok_col) = (line, col);
            let mut j = i;
            if chars[j] == 'b' {
                j += 1;
            }
            if chars.get(j) == Some(&'r') {
                j += 1;
            }
            let mut hashes = 0usize;
            while chars.get(j) == Some(&'#') {
                hashes += 1;
                j += 1;
            }
            // Opening quote at j; scan for `"` followed by `hashes` #s.
            j += 1;
            loop {
                match chars.get(j) {
                    None => break,
                    Some('"') => {
                        let mut k = j + 1;
                        let mut seen = 0usize;
                        while seen < hashes && chars.get(k) == Some(&'#') {
                            seen += 1;
                            k += 1;
                        }
                        if seen == hashes {
                            j = k;
                            break;
                        }
                        j += 1;
                    }
                    Some(_) => j += 1,
                }
            }
            bump!(j - i);
            tokens.push(Token::new(TokenKind::Literal, "<lit>", tok_line, tok_col));
            continue;
        }
        // Identifier / keyword.
        if c.is_alphabetic() || c == '_' {
            let (tok_line, tok_col) = (line, col);
            let start = i;
            let mut j = i;
            while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                j += 1;
            }
            // A plain string with a `b`/`r` prefix was handled above, so
            // a quote directly after the ident is a prefixed plain
            // string like b"x": treat `b` as consumed by the literal.
            let text: String = chars[start..j].iter().collect();
            if (text == "b") && chars.get(j) == Some(&'"') {
                // byte string literal
                bump!(j - i);
                let consumed = skip_plain_string(&chars, i);
                bump!(consumed);
                tokens.push(Token::new(TokenKind::Literal, "<lit>", tok_line, tok_col));
                continue;
            }
            bump!(j - i);
            tokens.push(Token::new(TokenKind::Ident, text, tok_line, tok_col));
            continue;
        }
        // Numeric literal.
        if c.is_ascii_digit() {
            let (tok_line, tok_col) = (line, col);
            let mut j = i;
            while j < chars.len()
                && (chars[j].is_alphanumeric() || chars[j] == '_' || chars[j] == '.')
            {
                // Don't swallow `..` range or a method call on a number.
                if chars[j] == '.'
                    && (chars.get(j + 1) == Some(&'.')
                        || chars.get(j + 1).is_some_and(|n| n.is_alphabetic()))
                {
                    break;
                }
                j += 1;
            }
            bump!(j - i);
            tokens.push(Token::new(TokenKind::Literal, "<lit>", tok_line, tok_col));
            continue;
        }
        // Plain string.
        if c == '"' {
            let (tok_line, tok_col) = (line, col);
            let consumed = skip_plain_string(&chars, i);
            bump!(consumed);
            tokens.push(Token::new(TokenKind::Literal, "<lit>", tok_line, tok_col));
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let (tok_line, tok_col) = (line, col);
            let next = chars.get(i + 1);
            let after = chars.get(i + 2);
            let is_lifetime =
                next.is_some_and(|n| n.is_alphabetic() || *n == '_') && after != Some(&'\'');
            if is_lifetime {
                let start = i;
                let mut j = i + 1;
                while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                let text: String = chars[start..j].iter().collect();
                bump!(j - i);
                tokens.push(Token::new(TokenKind::Lifetime, text, tok_line, tok_col));
            } else {
                // char literal: 'x', '\n', '\'', '\u{...}'
                let mut j = i + 1;
                if chars.get(j) == Some(&'\\') {
                    j += 2;
                    // \u{..}
                    while j < chars.len() && chars[j] != '\'' {
                        j += 1;
                    }
                } else {
                    j += 1;
                }
                if chars.get(j) == Some(&'\'') {
                    j += 1;
                }
                bump!(j - i);
                tokens.push(Token::new(TokenKind::Literal, "<lit>", tok_line, tok_col));
            }
            continue;
        }
        // `::` as one token; all other punctuation single-char.
        if c == ':' && chars.get(i + 1) == Some(&':') {
            tokens.push(Token::new(TokenKind::Punct, "::", line, col));
            bump!(2);
            continue;
        }
        tokens.push(Token::new(TokenKind::Punct, c.to_string(), line, col));
        bump!(1);
    }
    (tokens, suppressions)
}

/// Chars consumed by a plain `"..."` string starting at `i` (at the
/// opening quote).
fn skip_plain_string(chars: &[char], i: usize) -> usize {
    let mut j = i + 1;
    while j < chars.len() {
        match chars[j] {
            '\\' => j += 2,
            '"' => {
                j += 1;
                break;
            }
            _ => j += 1,
        }
    }
    j - i
}

/// Does a raw-string literal (`r"`, `r#"`, `br"`, ...) start at `i`?
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return false;
    }
    j += 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// Parse `// wmtree-lint: allow(WM0101, WM0105)` → the codes.
fn parse_suppression(comment: &str) -> Option<Vec<String>> {
    let idx = comment.find("wmtree-lint:")?;
    let rest = comment[idx + "wmtree-lint:".len()..].trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let end = rest.find(')')?;
    let codes: Vec<String> = rest[..end]
        .split(',')
        .map(|c| c.trim().to_string())
        .filter(|c| !c.is_empty())
        .collect();
    if codes.is_empty() {
        None
    } else {
        Some(codes)
    }
}

/// Mark lines covered by `#[cfg(test)]` / `#[test]` items as test code.
///
/// After such an attribute, any further attributes are skipped, then
/// the item's braced block (from its first `{` to the matching `}`) is
/// marked. This catches `mod tests { ... }` and `#[test] fn` items —
/// the only shapes the workspace uses.
fn mark_test_regions(tokens: &[Token], is_test_line: &mut [bool]) {
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct("#") && tokens.get(i + 1).is_some_and(|t| t.is_punct("[")) {
            // Scan the attribute body for the ident `test`.
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut mentions_test = false;
            while j < tokens.len() && depth > 0 {
                if tokens[j].is_punct("[") {
                    depth += 1;
                } else if tokens[j].is_punct("]") {
                    depth -= 1;
                } else if tokens[j].is_ident("test") {
                    mentions_test = true;
                }
                j += 1;
            }
            if mentions_test {
                let attr_line = tokens[i].line;
                // Skip over any further attributes.
                let mut k = j;
                while k < tokens.len()
                    && tokens[k].is_punct("#")
                    && tokens.get(k + 1).is_some_and(|t| t.is_punct("["))
                {
                    let mut d = 1usize;
                    k += 2;
                    while k < tokens.len() && d > 0 {
                        if tokens[k].is_punct("[") {
                            d += 1;
                        } else if tokens[k].is_punct("]") {
                            d -= 1;
                        }
                        k += 1;
                    }
                }
                // Find the item's opening brace, then its match.
                while k < tokens.len() && !tokens[k].is_punct("{") {
                    // A `;` first means a braceless item (e.g. `mod m;`).
                    if tokens[k].is_punct(";") {
                        break;
                    }
                    k += 1;
                }
                if k < tokens.len() && tokens[k].is_punct("{") {
                    let mut d = 0usize;
                    let mut m = k;
                    while m < tokens.len() {
                        if tokens[m].is_punct("{") {
                            d += 1;
                        } else if tokens[m].is_punct("}") {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        m += 1;
                    }
                    let end_line = tokens.get(m).map(|t| t.line).unwrap_or(usize::MAX);
                    for l in attr_line..=end_line.min(is_test_line.len()) {
                        if l >= 1 {
                            is_test_line[l - 1] = true;
                        }
                    }
                    i = m + 1;
                    continue;
                }
            }
            i = j;
            continue;
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        SourceFile::parse("t.rs", "t", src, false)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_are_not_tokens() {
        let src = r##"
            // SystemTime::now in a comment
            /* Instant::now in a block /* nested */ comment */
            let s = "SystemTime::now in a string";
            let r = r#"Instant::now in a raw string"#;
            let c = 'x';
            fn real() {}
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"SystemTime".to_string()));
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(ids.contains(&"real".to_string()));
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        let ids = idents(src);
        assert!(ids.contains(&"str".to_string()));
        let f = SourceFile::parse("t.rs", "t", src, false);
        assert!(f
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Lifetime && t.text == "'a"));
    }

    #[test]
    fn double_colon_is_one_token() {
        let f = SourceFile::parse("t.rs", "t", "a::b", false);
        assert_eq!(f.tokens.len(), 3);
        assert!(f.tokens[1].is_punct("::"));
    }

    #[test]
    fn positions_are_one_based() {
        let f = SourceFile::parse("t.rs", "t", "let x = 1;\nlet y = 2;", false);
        let y = f.tokens.iter().find(|t| t.is_ident("y")).unwrap();
        assert_eq!((y.line, y.col), (2, 5));
    }

    #[test]
    fn cfg_test_region_marked() {
        let src = "\
fn prod() {}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        prod();
    }
}";
        let f = SourceFile::parse("t.rs", "t", src, false);
        assert!(!f.is_test(1));
        assert!(f.is_test(3), "attribute line is test");
        assert!(f.is_test(7), "body is test");
        assert!(f.is_test(9), "closing brace is test");
    }

    #[test]
    fn test_attr_fn_marked() {
        let src = "#[test]\nfn check() { work(); }\nfn prod() {}";
        let f = SourceFile::parse("t.rs", "t", src, false);
        assert!(f.is_test(2));
        assert!(!f.is_test(3));
    }

    #[test]
    fn whole_file_test_flag() {
        let f = SourceFile::parse("tests/x.rs", "t", "fn a() {}", true);
        assert!(f.is_test(1));
    }

    #[test]
    fn suppression_parsing() {
        let src = "let a = 1; // wmtree-lint: allow(WM0105)\nlet b = 2;\nlet c = 3;";
        let f = SourceFile::parse("t.rs", "t", src, false);
        assert!(f.is_suppressed("WM0105", 1));
        assert!(
            !f.is_suppressed("WM0105", 2),
            "a trailing comment covers only its own line"
        );
        assert!(!f.is_suppressed("WM0101", 1));
        // A comment alone on its line covers the next line instead.
        let own = "// wmtree-lint: allow(WM0105)\nlet b = y.unwrap();";
        let f2 = SourceFile::parse("t.rs", "t", own, false);
        assert!(f2.is_suppressed("WM0105", 2));
    }

    #[test]
    fn suppression_multiple_codes() {
        let f = SourceFile::parse(
            "t.rs",
            "t",
            "// wmtree-lint: allow(WM0101, WM0102)\nx();",
            false,
        );
        assert!(f.is_suppressed("WM0101", 2));
        assert!(f.is_suppressed("WM0102", 2));
    }

    #[test]
    fn numeric_literals_with_method_calls() {
        let f = SourceFile::parse(
            "t.rs",
            "t",
            "let x = 1.max(2); let y = 1..3; let z = 1.5;",
            false,
        );
        assert!(f.tokens.iter().any(|t| t.is_ident("max")));
        // 1.5 stays a single literal.
        let lits = f
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .count();
        assert_eq!(lits, 5); // 1, 2, 1, 3, 1.5
    }
}
