//! A small, dependency-free Rust lexer for the source lints.
//!
//! This is deliberately not a parser: the rules in [`crate::rules`]
//! match token *sequences* (`SystemTime` `::` `now`), so all the lexer
//! must get right is what is and is not a token — comments, string
//! literals (including raw strings), and char-vs-lifetime ambiguity.
//! It also extracts the two pieces of file-level structure the engine
//! needs: which lines are test code (`#[cfg(test)]` / `#[test]` items)
//! and where `// wmtree-lint: allow(...)` suppressions sit.

/// What kind of token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword.
    Ident,
    /// Punctuation. `::` is one token; everything else is one character.
    Punct,
    /// A string/char/numeric literal (contents not preserved verbatim
    /// for strings — rules must never match inside literals).
    Literal,
    /// A lifetime (`'a`).
    Lifetime,
}

/// One token with its position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Kind.
    pub kind: TokenKind,
    /// Token text (for [`TokenKind::Literal`] a placeholder `"<lit>"`).
    pub text: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column (in characters).
    pub col: usize,
}

impl Token {
    fn new(kind: TokenKind, text: impl Into<String>, line: usize, col: usize) -> Token {
        Token {
            kind,
            text: text.into(),
            line,
            col,
        }
    }

    /// Is this an identifier with exactly this text?
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// Is this a punctuation token with exactly this text?
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == text
    }
}

/// An inline suppression comment: `// wmtree-lint: allow(WM0101, ...)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// Line the comment sits on. The suppression covers this line and,
    /// so that it can precede the offending statement, the next one.
    pub line: usize,
    /// The codes it allows.
    pub codes: Vec<String>,
}

/// A lexed source file plus the file-level structure rules need.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path (`/`-separated).
    pub path: String,
    /// Name of the crate the file belongs to (`"tree"`, `"analysis"`,
    /// `"suite"` for the umbrella `src/`).
    pub crate_name: String,
    /// Raw lines, for snippet rendering.
    pub lines: Vec<String>,
    /// The token stream (comments and whitespace removed).
    pub tokens: Vec<Token>,
    /// `is_test_line[line-1]` — inside a `#[cfg(test)]` or `#[test]`
    /// item, or in a file under `tests/`.
    pub is_test_line: Vec<bool>,
    /// Inline `wmtree-lint: allow(...)` suppressions.
    pub suppressions: Vec<Suppression>,
}

impl SourceFile {
    /// Lex `content`. `whole_file_is_test` marks every line as test
    /// context (integration-test and bench files).
    pub fn parse(
        path: impl Into<String>,
        crate_name: impl Into<String>,
        content: &str,
        whole_file_is_test: bool,
    ) -> SourceFile {
        let lines: Vec<String> = content.lines().map(|l| l.to_string()).collect();
        let (tokens, suppressions) = lex(content);
        let mut is_test_line = vec![whole_file_is_test; lines.len()];
        if !whole_file_is_test {
            mark_test_regions(&tokens, &mut is_test_line);
        }
        SourceFile {
            path: path.into(),
            crate_name: crate_name.into(),
            lines,
            tokens,
            is_test_line,
            suppressions,
        }
    }

    /// Is the 1-based line test code?
    pub fn is_test(&self, line: usize) -> bool {
        self.is_test_line
            .get(line.wrapping_sub(1))
            .copied()
            .unwrap_or(false)
    }

    /// Is `code` suppressed at the 1-based line? A trailing suppression
    /// comment covers its own line; a comment alone on its line covers
    /// the next line instead.
    pub fn is_suppressed(&self, code: &str, line: usize) -> bool {
        self.suppressions.iter().any(|s| {
            let covers = if self.line_has_code(s.line) {
                s.line == line
            } else {
                s.line == line || s.line + 1 == line
            };
            covers && s.codes.iter().any(|c| c == code)
        })
    }

    /// Does any token sit on the 1-based line (comments don't count)?
    pub fn line_has_code(&self, line: usize) -> bool {
        self.tokens.iter().any(|t| t.line == line)
    }

    /// The raw text of a 1-based line (empty if out of range).
    pub fn line_text(&self, line: usize) -> &str {
        self.lines
            .get(line.wrapping_sub(1))
            .map(|s| s.as_str())
            .unwrap_or("")
    }
}

/// Tokenize, collecting suppression comments on the way.
fn lex(content: &str) -> (Vec<Token>, Vec<Suppression>) {
    let chars: Vec<char> = content.chars().collect();
    let mut tokens = Vec::new();
    let mut suppressions = Vec::new();
    let mut i = 0;
    let mut line = 1usize;
    let mut col = 1usize;

    // Advance over `n` chars, tracking line/col.
    macro_rules! bump {
        ($n:expr) => {
            for _ in 0..$n {
                if i < chars.len() {
                    if chars[i] == '\n' {
                        line += 1;
                        col = 1;
                    } else {
                        col += 1;
                    }
                    i += 1;
                }
            }
        };
    }

    while i < chars.len() {
        let c = chars[i];
        // Line comment (plain or doc): skip to end of line, but mine it
        // for a suppression directive first.
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start = i;
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            let comment: String = chars[start..i].iter().collect();
            if let Some(codes) = parse_suppression(&comment) {
                suppressions.push(Suppression { line, codes });
            }
            col += i - start;
            continue;
        }
        // Block comment, nesting allowed.
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let mut depth = 0usize;
            while i < chars.len() {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    bump!(2);
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    bump!(2);
                    if depth == 0 {
                        break;
                    }
                } else {
                    bump!(1);
                }
            }
            continue;
        }
        // Whitespace.
        if c.is_whitespace() {
            bump!(1);
            continue;
        }
        // Raw string r"..." / r#"..."# (and br variants).
        if (c == 'r' || c == 'b') && is_raw_string_start(&chars, i) {
            let (tok_line, tok_col) = (line, col);
            let mut j = i;
            if chars[j] == 'b' {
                j += 1;
            }
            if chars.get(j) == Some(&'r') {
                j += 1;
            }
            let mut hashes = 0usize;
            while chars.get(j) == Some(&'#') {
                hashes += 1;
                j += 1;
            }
            // Opening quote at j; scan for `"` followed by `hashes` #s.
            j += 1;
            loop {
                match chars.get(j) {
                    None => break,
                    Some('"') => {
                        let mut k = j + 1;
                        let mut seen = 0usize;
                        while seen < hashes && chars.get(k) == Some(&'#') {
                            seen += 1;
                            k += 1;
                        }
                        if seen == hashes {
                            j = k;
                            break;
                        }
                        j += 1;
                    }
                    Some(_) => j += 1,
                }
            }
            bump!(j - i);
            tokens.push(Token::new(TokenKind::Literal, "<lit>", tok_line, tok_col));
            continue;
        }
        // Identifier / keyword.
        if c.is_alphabetic() || c == '_' {
            let (tok_line, tok_col) = (line, col);
            let start = i;
            let mut j = i;
            while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                j += 1;
            }
            // A plain string with a `b`/`r` prefix was handled above, so
            // a quote directly after the ident is a prefixed plain
            // string like b"x": treat `b` as consumed by the literal.
            let text: String = chars[start..j].iter().collect();
            if (text == "b") && chars.get(j) == Some(&'"') {
                // byte string literal
                bump!(j - i);
                let consumed = skip_plain_string(&chars, i);
                bump!(consumed);
                tokens.push(Token::new(TokenKind::Literal, "<lit>", tok_line, tok_col));
                continue;
            }
            bump!(j - i);
            tokens.push(Token::new(TokenKind::Ident, text, tok_line, tok_col));
            continue;
        }
        // Numeric literal.
        if c.is_ascii_digit() {
            let (tok_line, tok_col) = (line, col);
            let mut j = i;
            while j < chars.len()
                && (chars[j].is_alphanumeric() || chars[j] == '_' || chars[j] == '.')
            {
                // Don't swallow `..` range or a method call on a number.
                if chars[j] == '.'
                    && (chars.get(j + 1) == Some(&'.')
                        || chars.get(j + 1).is_some_and(|n| n.is_alphabetic()))
                {
                    break;
                }
                j += 1;
            }
            bump!(j - i);
            tokens.push(Token::new(TokenKind::Literal, "<lit>", tok_line, tok_col));
            continue;
        }
        // Plain string.
        if c == '"' {
            let (tok_line, tok_col) = (line, col);
            let consumed = skip_plain_string(&chars, i);
            bump!(consumed);
            tokens.push(Token::new(TokenKind::Literal, "<lit>", tok_line, tok_col));
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let (tok_line, tok_col) = (line, col);
            let next = chars.get(i + 1);
            let after = chars.get(i + 2);
            let is_lifetime =
                next.is_some_and(|n| n.is_alphabetic() || *n == '_') && after != Some(&'\'');
            if is_lifetime {
                let start = i;
                let mut j = i + 1;
                while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                let text: String = chars[start..j].iter().collect();
                bump!(j - i);
                tokens.push(Token::new(TokenKind::Lifetime, text, tok_line, tok_col));
            } else {
                // char literal: 'x', '\n', '\'', '\u{...}'
                let mut j = i + 1;
                if chars.get(j) == Some(&'\\') {
                    j += 2;
                    // \u{..}
                    while j < chars.len() && chars[j] != '\'' {
                        j += 1;
                    }
                } else {
                    j += 1;
                }
                if chars.get(j) == Some(&'\'') {
                    j += 1;
                }
                bump!(j - i);
                tokens.push(Token::new(TokenKind::Literal, "<lit>", tok_line, tok_col));
            }
            continue;
        }
        // `::` as one token; all other punctuation single-char.
        if c == ':' && chars.get(i + 1) == Some(&':') {
            tokens.push(Token::new(TokenKind::Punct, "::", line, col));
            bump!(2);
            continue;
        }
        tokens.push(Token::new(TokenKind::Punct, c.to_string(), line, col));
        bump!(1);
    }
    (tokens, suppressions)
}

/// Chars consumed by a plain `"..."` string starting at `i` (at the
/// opening quote).
fn skip_plain_string(chars: &[char], i: usize) -> usize {
    let mut j = i + 1;
    while j < chars.len() {
        match chars[j] {
            '\\' => j += 2,
            '"' => {
                j += 1;
                break;
            }
            _ => j += 1,
        }
    }
    j - i
}

/// Does a raw-string literal (`r"`, `r#"`, `br"`, ...) start at `i`?
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return false;
    }
    j += 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// Parse `// wmtree-lint: allow(WM0101, WM0105)` → the codes.
fn parse_suppression(comment: &str) -> Option<Vec<String>> {
    let idx = comment.find("wmtree-lint:")?;
    let rest = comment[idx + "wmtree-lint:".len()..].trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let end = rest.find(')')?;
    let codes: Vec<String> = rest[..end]
        .split(',')
        .map(|c| c.trim().to_string())
        .filter(|c| !c.is_empty())
        .collect();
    if codes.is_empty() {
        None
    } else {
        Some(codes)
    }
}

/// Mark lines covered by `#[cfg(test)]` / `#[test]` items as test code.
///
/// After such an attribute, any further attributes are skipped, then
/// the item's braced block (from its first `{` to the matching `}`) is
/// marked. This catches `mod tests { ... }` and `#[test] fn` items —
/// the only shapes the workspace uses.
fn mark_test_regions(tokens: &[Token], is_test_line: &mut [bool]) {
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct("#") && tokens.get(i + 1).is_some_and(|t| t.is_punct("[")) {
            // Scan the attribute body for the ident `test`.
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut mentions_test = false;
            while j < tokens.len() && depth > 0 {
                if tokens[j].is_punct("[") {
                    depth += 1;
                } else if tokens[j].is_punct("]") {
                    depth -= 1;
                } else if tokens[j].is_ident("test") {
                    mentions_test = true;
                }
                j += 1;
            }
            if mentions_test {
                let attr_line = tokens[i].line;
                // Skip over any further attributes.
                let mut k = j;
                while k < tokens.len()
                    && tokens[k].is_punct("#")
                    && tokens.get(k + 1).is_some_and(|t| t.is_punct("["))
                {
                    let mut d = 1usize;
                    k += 2;
                    while k < tokens.len() && d > 0 {
                        if tokens[k].is_punct("[") {
                            d += 1;
                        } else if tokens[k].is_punct("]") {
                            d -= 1;
                        }
                        k += 1;
                    }
                }
                // Find the item's opening brace, then its match.
                while k < tokens.len() && !tokens[k].is_punct("{") {
                    // A `;` first means a braceless item (e.g. `mod m;`).
                    if tokens[k].is_punct(";") {
                        break;
                    }
                    k += 1;
                }
                if k < tokens.len() && tokens[k].is_punct("{") {
                    let mut d = 0usize;
                    let mut m = k;
                    while m < tokens.len() {
                        if tokens[m].is_punct("{") {
                            d += 1;
                        } else if tokens[m].is_punct("}") {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        m += 1;
                    }
                    let end_line = tokens.get(m).map(|t| t.line).unwrap_or(usize::MAX);
                    for l in attr_line..=end_line.min(is_test_line.len()) {
                        if l >= 1 {
                            is_test_line[l - 1] = true;
                        }
                    }
                    i = m + 1;
                    continue;
                }
            }
            i = j;
            continue;
        }
        i += 1;
    }
}

// --------------------------------------------------------------- symbols

/// A `fn` definition found in the token stream (layer 3 input).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnDef {
    /// The function's name.
    pub name: String,
    /// Enclosing `mod`/`impl`/`trait` segments within the file, outermost
    /// first (e.g. `["inner", "Writer"]` for a method of `Writer` inside
    /// `mod inner`).
    pub path: Vec<String>,
    /// 1-based line of the name token.
    pub line: usize,
    /// 1-based column of the name token.
    pub col: usize,
    /// Token-index range of the braced body: `(open, close)` inclusive.
    /// `None` for a bodyless trait signature.
    pub body: Option<(usize, usize)>,
}

/// One `use` import: `use a::b::c as d;` → segments `[a, b, c]`,
/// alias `d` (the alias defaults to the last segment). Glob imports are
/// not recorded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseImport {
    /// Full path segments.
    pub segments: Vec<String>,
    /// The name the import binds locally.
    pub alias: String,
}

/// One call site: a (possibly path-qualified) identifier followed by
/// `(`. Macro invocations (`name!`) are never call sites.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Path segments, last one the called name (`["serde_json",
    /// "to_string"]`, or just `["flush"]` for a method call).
    pub segments: Vec<String>,
    /// Preceded by `.` — a method call.
    pub is_method: bool,
    /// Token index of the first path segment (for span rendering).
    pub start_idx: usize,
    /// Token index of the called name.
    pub end_idx: usize,
}

/// Everything layer 3 extracts from one file's token stream.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct SymbolTable {
    /// Every `fn` definition, in source order.
    pub fns: Vec<FnDef>,
    /// Every `use` import, in source order.
    pub imports: Vec<UseImport>,
    /// Every call site, in source order.
    pub calls: Vec<CallSite>,
}

impl SymbolTable {
    /// Index of the innermost fn whose body contains token `idx`.
    pub fn enclosing_fn(&self, idx: usize) -> Option<usize> {
        let mut best: Option<(usize, usize)> = None; // (open, fn index)
        for (f, def) in self.fns.iter().enumerate() {
            if let Some((open, close)) = def.body {
                if open < idx && idx < close && best.is_none_or(|(o, _)| open > o) {
                    best = Some((open, f));
                }
            }
        }
        best.map(|(_, f)| f)
    }
}

/// Keywords that look like calls when followed by `(` but are not.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "as", "let", "else", "move", "fn",
    "unsafe", "where", "impl", "use", "pub", "mod", "const", "static", "ref", "mut", "dyn",
    "break", "continue", "struct", "enum", "trait", "type", "await", "async", "yield",
];

/// Extract the symbol table from a lexed token stream.
///
/// The scanner tracks brace depth and a stack of named scopes (`mod`,
/// `impl`, `trait`) so each fn gets a path like `module::Type::name`.
/// It deliberately under-approximates — turbofish calls, macro bodies,
/// and glob imports are skipped — because the taint layer treats an
/// unresolved call as no edge, never as a spurious one.
pub fn extract_symbols(tokens: &[Token]) -> SymbolTable {
    let mut table = SymbolTable::default();
    let mut depth = 0usize;
    // (segment, depth the segment's block lives at)
    let mut stack: Vec<(String, usize)> = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct("{") {
            depth += 1;
            i += 1;
            continue;
        }
        if t.is_punct("}") {
            depth = depth.saturating_sub(1);
            while stack.last().is_some_and(|(_, d)| *d > depth) {
                stack.pop();
            }
            i += 1;
            continue;
        }
        if t.is_ident("use") {
            let end = scan_to_semicolon(tokens, i + 1);
            parse_use_tree(&tokens[i + 1..end], &mut Vec::new(), &mut table.imports);
            i = end;
            continue;
        }
        if t.is_ident("mod")
            && tokens
                .get(i + 1)
                .is_some_and(|t| t.kind == TokenKind::Ident)
            && tokens.get(i + 2).is_some_and(|t| t.is_punct("{"))
        {
            stack.push((tokens[i + 1].text.clone(), depth + 1));
            i += 2; // the `{` is handled by the main loop
            continue;
        }
        if t.is_ident("impl") || t.is_ident("trait") {
            let is_trait = t.is_ident("trait");
            let mut j = i + 1;
            let mut angle = 0usize;
            let mut after_for = false;
            let mut name: Option<String> = None;
            while j < tokens.len() && !tokens[j].is_punct("{") && !tokens[j].is_punct(";") {
                match &tokens[j] {
                    tk if tk.is_punct("<") => angle += 1,
                    tk if tk.is_punct(">") => angle = angle.saturating_sub(1),
                    tk if tk.is_ident("for") && !is_trait => {
                        after_for = true;
                        name = None;
                    }
                    // `impl Trait for Type` → Type; `impl Type` or
                    // `trait Name` → the first ident.
                    tk if tk.kind == TokenKind::Ident
                        && angle == 0
                        && (name.is_none() || after_for) =>
                    {
                        name = Some(tk.text.clone());
                        after_for = false;
                    }
                    _ => {}
                }
                j += 1;
            }
            if tokens.get(j).is_some_and(|t| t.is_punct("{")) {
                stack.push((name.unwrap_or_else(|| "impl".to_string()), depth + 1));
            }
            i = j;
            continue;
        }
        if t.is_ident("fn")
            && tokens
                .get(i + 1)
                .is_some_and(|t| t.kind == TokenKind::Ident)
        {
            let name_tok = &tokens[i + 1];
            // Find the body `{` (or a `;` for a bodyless signature).
            let mut j = i + 2;
            while j < tokens.len() && !tokens[j].is_punct("{") && !tokens[j].is_punct(";") {
                j += 1;
            }
            let body = if tokens.get(j).is_some_and(|t| t.is_punct("{")) {
                let mut d = 0usize;
                let mut m = j;
                while m < tokens.len() {
                    if tokens[m].is_punct("{") {
                        d += 1;
                    } else if tokens[m].is_punct("}") {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    m += 1;
                }
                Some((j, m.min(tokens.len().saturating_sub(1))))
            } else {
                None
            };
            table.fns.push(FnDef {
                name: name_tok.text.clone(),
                path: stack.iter().map(|(s, _)| s.clone()).collect(),
                line: name_tok.line,
                col: name_tok.col,
                body,
            });
            // Keep scanning from after the name so the body's own items
            // and call sites are still visited by this loop.
            i += 2;
            continue;
        }
        // Call site: Ident `(`, optionally preceded by a `a::b::` path.
        if t.kind == TokenKind::Ident
            && tokens.get(i + 1).is_some_and(|t| t.is_punct("("))
            && !NON_CALL_KEYWORDS.iter().any(|k| t.is_ident(k))
        {
            let mut j = i;
            while j >= 2 && tokens[j - 1].is_punct("::") && tokens[j - 2].kind == TokenKind::Ident {
                j -= 2;
            }
            // `fn name(` is the definition we already recorded.
            if !(j >= 1 && tokens[j - 1].is_ident("fn")) {
                let segments: Vec<String> =
                    (j..=i).step_by(2).map(|k| tokens[k].text.clone()).collect();
                let is_method = j >= 1 && tokens[j - 1].is_punct(".");
                table.calls.push(CallSite {
                    segments,
                    is_method,
                    start_idx: j,
                    end_idx: i,
                });
            }
        }
        i += 1;
    }
    table
}

/// Token index just past the terminating `;` (or end of stream).
fn scan_to_semicolon(tokens: &[Token], mut i: usize) -> usize {
    while i < tokens.len() && !tokens[i].is_punct(";") {
        i += 1;
    }
    i
}

/// Parse a use tree (tokens between `use` and `;`), appending one
/// [`UseImport`] per leaf. Handles `a::b`, `a::b as c`, nested groups
/// `a::{b, c::d}`, and skips `*` globs.
fn parse_use_tree(tokens: &[Token], prefix: &mut Vec<String>, out: &mut Vec<UseImport>) {
    let mut i = 0;
    let base_len = prefix.len();
    while i < tokens.len() {
        let t = &tokens[i];
        if t.kind == TokenKind::Ident && !t.is_ident("as") {
            prefix.push(t.text.clone());
            i += 1;
            continue;
        }
        if t.is_punct("::") {
            i += 1;
            continue;
        }
        if t.is_ident("as") {
            if let Some(alias) = tokens.get(i + 1) {
                if !prefix.is_empty() {
                    out.push(UseImport {
                        segments: prefix.clone(),
                        alias: alias.text.clone(),
                    });
                }
                prefix.truncate(base_len);
            }
            i += 2;
            continue;
        }
        if t.is_punct("{") {
            // Split the group body on top-level commas, recursing with
            // the current prefix for each element.
            let mut d = 1usize;
            let mut j = i + 1;
            let mut start = j;
            while j < tokens.len() && d > 0 {
                if tokens[j].is_punct("{") {
                    d += 1;
                } else if tokens[j].is_punct("}") {
                    d -= 1;
                    if d == 0 {
                        flush_group(&tokens[start..j], prefix, out);
                    }
                } else if tokens[j].is_punct(",") && d == 1 {
                    flush_group(&tokens[start..j], prefix, out);
                    start = j + 1;
                }
                j += 1;
            }
            prefix.truncate(base_len);
            i = j;
            continue;
        }
        if t.is_punct(",") {
            // End of one top-level element (only inside groups; handled
            // there). At the top level a `,` cannot occur.
            flush_leaf(prefix, base_len, out);
            i += 1;
            continue;
        }
        // `*` glob or anything unexpected: drop the pending element.
        prefix.truncate(base_len);
        i += 1;
    }
    flush_leaf(prefix, base_len, out);
}

/// Recurse into one group element with the shared prefix.
fn flush_group(tokens: &[Token], prefix: &mut Vec<String>, out: &mut Vec<UseImport>) {
    let depth = prefix.len();
    parse_use_tree(tokens, prefix, out);
    prefix.truncate(depth);
}

/// Emit the pending path (if any) as an import aliased to its last
/// segment.
fn flush_leaf(prefix: &mut Vec<String>, base_len: usize, out: &mut Vec<UseImport>) {
    if prefix.len() > base_len {
        if let Some(alias) = prefix.last().cloned() {
            // `use a::b::self;` and `use x::y::Self` never appear in the
            // workspace; a lone keyword leaf is dropped.
            out.push(UseImport {
                segments: prefix.clone(),
                alias,
            });
        }
    }
    prefix.truncate(base_len);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        SourceFile::parse("t.rs", "t", src, false)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_are_not_tokens() {
        let src = r##"
            // SystemTime::now in a comment
            /* Instant::now in a block /* nested */ comment */
            let s = "SystemTime::now in a string";
            let r = r#"Instant::now in a raw string"#;
            let c = 'x';
            fn real() {}
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"SystemTime".to_string()));
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(ids.contains(&"real".to_string()));
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        let ids = idents(src);
        assert!(ids.contains(&"str".to_string()));
        let f = SourceFile::parse("t.rs", "t", src, false);
        assert!(f
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Lifetime && t.text == "'a"));
    }

    #[test]
    fn double_colon_is_one_token() {
        let f = SourceFile::parse("t.rs", "t", "a::b", false);
        assert_eq!(f.tokens.len(), 3);
        assert!(f.tokens[1].is_punct("::"));
    }

    #[test]
    fn positions_are_one_based() {
        let f = SourceFile::parse("t.rs", "t", "let x = 1;\nlet y = 2;", false);
        let y = f.tokens.iter().find(|t| t.is_ident("y")).unwrap();
        assert_eq!((y.line, y.col), (2, 5));
    }

    #[test]
    fn cfg_test_region_marked() {
        let src = "\
fn prod() {}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        prod();
    }
}";
        let f = SourceFile::parse("t.rs", "t", src, false);
        assert!(!f.is_test(1));
        assert!(f.is_test(3), "attribute line is test");
        assert!(f.is_test(7), "body is test");
        assert!(f.is_test(9), "closing brace is test");
    }

    #[test]
    fn test_attr_fn_marked() {
        let src = "#[test]\nfn check() { work(); }\nfn prod() {}";
        let f = SourceFile::parse("t.rs", "t", src, false);
        assert!(f.is_test(2));
        assert!(!f.is_test(3));
    }

    #[test]
    fn whole_file_test_flag() {
        let f = SourceFile::parse("tests/x.rs", "t", "fn a() {}", true);
        assert!(f.is_test(1));
    }

    #[test]
    fn suppression_parsing() {
        let src = "let a = 1; // wmtree-lint: allow(WM0105)\nlet b = 2;\nlet c = 3;";
        let f = SourceFile::parse("t.rs", "t", src, false);
        assert!(f.is_suppressed("WM0105", 1));
        assert!(
            !f.is_suppressed("WM0105", 2),
            "a trailing comment covers only its own line"
        );
        assert!(!f.is_suppressed("WM0101", 1));
        // A comment alone on its line covers the next line instead.
        let own = "// wmtree-lint: allow(WM0105)\nlet b = y.unwrap();";
        let f2 = SourceFile::parse("t.rs", "t", own, false);
        assert!(f2.is_suppressed("WM0105", 2));
    }

    #[test]
    fn suppression_multiple_codes() {
        let f = SourceFile::parse(
            "t.rs",
            "t",
            "// wmtree-lint: allow(WM0101, WM0102)\nx();",
            false,
        );
        assert!(f.is_suppressed("WM0101", 2));
        assert!(f.is_suppressed("WM0102", 2));
    }

    #[test]
    fn symbols_fns_mods_and_impls() {
        let src = "\
pub fn top() { helper(); }
mod inner {
    impl Writer {
        pub fn write_out(&self) { self.flush(); }
    }
    impl Render for Writer {
        fn render(&self) {}
    }
}
trait Sink {
    fn emit(&self);
}";
        let f = SourceFile::parse("t.rs", "t", src, false);
        let t = extract_symbols(&f.tokens);
        let keys: Vec<String> = t
            .fns
            .iter()
            .map(|d| {
                let mut p = d.path.clone();
                p.push(d.name.clone());
                p.join("::")
            })
            .collect();
        assert_eq!(
            keys,
            vec![
                "top",
                "inner::Writer::write_out",
                "inner::Writer::render",
                "Sink::emit"
            ]
        );
        // `emit` has no body; everything else does.
        assert!(t.fns[3].body.is_none());
        assert!(t.fns.iter().take(3).all(|d| d.body.is_some()));
    }

    #[test]
    fn symbols_calls_and_enclosing_fn() {
        let src = "\
fn a() { b(); x::y::c(); v.push(1); }
fn b() {}";
        let f = SourceFile::parse("t.rs", "t", src, false);
        let t = extract_symbols(&f.tokens);
        let calls: Vec<(Vec<String>, bool)> = t
            .calls
            .iter()
            .map(|c| (c.segments.clone(), c.is_method))
            .collect();
        assert_eq!(
            calls,
            vec![
                (vec!["b".to_string()], false),
                (
                    vec!["x".to_string(), "y".to_string(), "c".to_string()],
                    false
                ),
                (vec!["push".to_string()], true),
            ]
        );
        // All three calls sit inside fn `a` (index 0).
        for c in &t.calls {
            assert_eq!(t.enclosing_fn(c.end_idx), Some(0), "{:?}", c.segments);
        }
    }

    #[test]
    fn symbols_calls_skip_macros_and_keywords() {
        let src = "fn a() { println!(\"x\"); if (1 > 0) { vec![] } else { vec![] }; }";
        let f = SourceFile::parse("t.rs", "t", src, false);
        let t = extract_symbols(&f.tokens);
        assert!(t.calls.is_empty(), "{:?}", t.calls);
    }

    #[test]
    fn symbols_use_imports() {
        let src = "\
use a::b::c;
use d::e as f;
use g::{h, i::j, k as l};
use m::*;
pub fn z() {}";
        let f = SourceFile::parse("t.rs", "t", src, false);
        let t = extract_symbols(&f.tokens);
        let got: Vec<(String, String)> = t
            .imports
            .iter()
            .map(|u| (u.segments.join("::"), u.alias.clone()))
            .collect();
        assert_eq!(
            got,
            vec![
                ("a::b::c".to_string(), "c".to_string()),
                ("d::e".to_string(), "f".to_string()),
                ("g::h".to_string(), "h".to_string()),
                ("g::i::j".to_string(), "j".to_string()),
                ("g::k".to_string(), "l".to_string()),
            ]
        );
    }

    #[test]
    fn numeric_literals_with_method_calls() {
        let f = SourceFile::parse(
            "t.rs",
            "t",
            "let x = 1.max(2); let y = 1..3; let z = 1.5;",
            false,
        );
        assert!(f.tokens.iter().any(|t| t.is_ident("max")));
        // 1.5 stays a single literal.
        let lits = f
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .count();
        assert_eq!(lits, 5); // 1, 2, 1, 3, 1.5
    }
}
