//! Layer 3 — workspace-wide determinism taint analysis (`WM03xx`).
//!
//! The WM01xx lints prove each *file* clean in its own crate's terms,
//! but crate exemptions are load-bearing: `telemetry` may read the
//! clock because its output never enters results. Nothing per-file can
//! prove that boundary holds — that a clock read in an exempt crate
//! does not flow through three calls into a function that serializes a
//! report. This pass closes that gap: it seeds taint at nondeterminism
//! sources (reusing the WM01xx detectors as classifiers, *ignoring*
//! their crate exemptions), propagates it caller-ward over the
//! [`crate::graph`] call graph with a worklist fixpoint, stops at
//! sanctioned sanitizers (canonical sorts, `total_cmp`, `stable_hash`,
//! seeded RNG constructors), and reports every serializing function the
//! taint reaches, rendering the full source→…→sink call path.
//!
//! Propagation is deliberately conservative in one direction and
//! under-approximating in the other: any caller of a tainted function
//! is tainted (return values and side effects are not distinguished),
//! but a call that cannot be resolved to a *unique* definition creates
//! no edge (WM0307/WM0308 warn where that could hide a flow).

use crate::diag::{Code, Diagnostic, Severity, Span};
use crate::graph::{build_graph, CallGraph, FileFacts};
use crate::lexer::{Token, TokenKind};
use crate::rules::{EnvDep, HashIter, Rule, ThreadSpawn, UnseededRng, WallClock};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, VecDeque};

/// What kind of nondeterminism a taint carries. One BFS runs per kind,
/// because sanitizers are kind-specific (a sort launders iteration
/// order, not wall-clock time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TaintKind {
    /// `SystemTime::now` / `Instant::now` (WM0101 detector).
    WallClock,
    /// `HashMap`/`HashSet` iteration order (WM0102 detector).
    HashIter,
    /// Entropy-seeded RNG (WM0103 detector).
    EntropyRng,
    /// `env::var` / thread-identity reads (WM0104 detector).
    EnvRead,
    /// Raw `thread::spawn` scheduling (WM0106 detector).
    ThreadSpawn,
}

impl TaintKind {
    /// Every kind, in code order (WM0301..WM0305).
    pub const ALL: [TaintKind; 5] = [
        TaintKind::WallClock,
        TaintKind::HashIter,
        TaintKind::EntropyRng,
        TaintKind::EnvRead,
        TaintKind::ThreadSpawn,
    ];

    /// The per-kind flow code (WM0301..WM0305).
    pub fn code(&self) -> Code {
        match self {
            TaintKind::WallClock => Code("WM0301"),
            TaintKind::HashIter => Code("WM0302"),
            TaintKind::EntropyRng => Code("WM0303"),
            TaintKind::EnvRead => Code("WM0304"),
            TaintKind::ThreadSpawn => Code("WM0305"),
        }
    }

    /// Human description of the nondeterminism.
    pub fn describe(&self) -> &'static str {
        match self {
            TaintKind::WallClock => "wall-clock time",
            TaintKind::HashIter => "hash-map iteration order",
            TaintKind::EntropyRng => "entropy-seeded randomness",
            TaintKind::EnvRead => "process-environment input",
            TaintKind::ThreadSpawn => "detached-thread scheduling",
        }
    }
}

/// The WM01xx detectors reused as source classifiers, with the taint
/// kind each one seeds. WM0105 (`unwrap`) is absent: an unwrap is a
/// robustness defect, not a nondeterminism source.
pub fn source_rules() -> Vec<(Box<dyn Rule>, TaintKind)> {
    vec![
        (Box::new(WallClock) as Box<dyn Rule>, TaintKind::WallClock),
        (Box::new(HashIter), TaintKind::HashIter),
        (Box::new(UnseededRng), TaintKind::EntropyRng),
        (Box::new(EnvDep), TaintKind::EnvRead),
        (Box::new(ThreadSpawn), TaintKind::ThreadSpawn),
    ]
}

/// Crates whose functions are never sinks: their outputs (progress
/// lines, bench timings) are measurement-harness artifacts, not
/// results. This mirrors the WM0101 exemption — and the taint pass
/// exists precisely to prove flows *out of* these crates still get
/// caught at the pipeline-side sink.
const SINK_EXEMPT_CRATES: &[&str] = &["telemetry", "bench"];

/// Fully-qualified keys that are sanctioned sanitizers: never seeded,
/// never tainted, never propagate.
const SANCTIONED_FNS: &[&str] = &["webgen::seed::stable_hash"];

/// Classify a call site as a serialization/write primitive. Returns the
/// canonical sink label, or `None`.
pub fn classify_sink(segments: &[String], is_method: bool) -> Option<String> {
    let name = segments.last()?.as_str();
    if matches!(name, "write_all" | "write_fmt") {
        return Some(name.to_string());
    }
    if is_method || segments.len() < 2 {
        return None;
    }
    let prev = segments[segments.len() - 2].as_str();
    match (prev, name) {
        ("serde_json", "to_string" | "to_string_pretty" | "to_writer" | "to_vec")
        | ("fs", "write" | "rename")
        | ("File", "create") => Some(format!("{prev}::{name}")),
        _ => None,
    }
}

/// Token names that sanitize hash-iteration taint: canonical orderings
/// the artifact checks (WM02xx) already treat as sanctioned.
const HASH_SANITIZERS: &[&str] = &[
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "total_cmp",
    "BTreeMap",
    "BTreeSet",
];

/// Token names that sanitize entropy taint: seeded construction and the
/// workspace's seed-derivation helpers.
const RNG_SANITIZERS: &[&str] = &["from_seed", "seed_from_u64", "SeedMixer", "stable_hash"];

/// Which taint kinds a function body sanitizes, judged from its tokens.
/// A body that canonically sorts before returning launders iteration
/// order for its callers; a body that reseeds deterministically
/// launders entropy.
pub fn sanitized_kinds(body: &[Token]) -> Vec<TaintKind> {
    let mut out = Vec::new();
    for t in body {
        if t.kind != TokenKind::Ident {
            continue;
        }
        if HASH_SANITIZERS.contains(&t.text.as_str()) {
            out.push(TaintKind::HashIter);
        }
        if RNG_SANITIZERS.contains(&t.text.as_str()) {
            out.push(TaintKind::EntropyRng);
        }
    }
    out
}

/// Static description of one WM03xx code (drives `rules`, `--explain`,
/// and the DESIGN.md §11 catalog).
#[derive(Debug, Clone, Copy)]
pub struct TaintMeta {
    /// Stable code.
    pub code: Code,
    /// Kebab-case name.
    pub name: &'static str,
    /// One-line summary.
    pub summary: &'static str,
    /// Why the code exists.
    pub rationale: &'static str,
    /// Severity of findings.
    pub severity: Severity,
}

/// The WM03xx catalog, in code order.
pub fn catalog() -> Vec<TaintMeta> {
    vec![
        TaintMeta {
            code: Code("WM0301"),
            name: "clock-to-sink",
            summary: "wall-clock time flows into a serializing function",
            rationale: "a timestamp that crosses from telemetry into a report makes \
                        reruns diverge byte-for-byte — the exact leak PR 1's \
                        byte-identity tests caught dynamically",
            severity: Severity::Error,
        },
        TaintMeta {
            code: Code("WM0302"),
            name: "hash-order-to-sink",
            summary: "hash-map iteration order flows into a serializing function",
            rationale: "HashMap order is randomized per process; serialized output \
                        must pass through a canonical sort or BTree first",
            severity: Severity::Error,
        },
        TaintMeta {
            code: Code("WM0303"),
            name: "entropy-to-sink",
            summary: "entropy-seeded randomness flows into a serializing function",
            rationale: "results must be a pure function of the experiment seed; \
                        OS entropy breaks replay equivalence",
            severity: Severity::Error,
        },
        TaintMeta {
            code: Code("WM0304"),
            name: "env-to-sink",
            summary: "process-environment input flows into a serializing function",
            rationale: "environment variables and thread identity are setup \
                        parameters — the paper's core warning — and must not \
                        shape serialized results",
            severity: Severity::Error,
        },
        TaintMeta {
            code: Code("WM0305"),
            name: "spawn-to-sink",
            summary: "detached-thread scheduling flows into a serializing function",
            rationale: "a detached spawn races deterministic merge order; only \
                        joining pools (par_map, the commander) may feed sinks",
            severity: Severity::Error,
        },
        TaintMeta {
            code: Code("WM0306"),
            name: "source-in-sink",
            summary: "a serializing function itself reads a nondeterminism source",
            rationale: "the zero-hop case of WM0301–WM0305: the writer is the \
                        leak, no call path needed",
            severity: Severity::Error,
        },
        TaintMeta {
            code: Code("WM0307"),
            name: "ambiguous-source-symbol",
            summary: "duplicate fully-qualified fn key where a duplicate has sources",
            rationale: "call resolution drops ambiguous targets; a duplicate key \
                        hiding a source could silence a real flow",
            severity: Severity::Warning,
        },
        TaintMeta {
            code: Code("WM0308"),
            name: "unresolved-source-call",
            summary: "a serializing function calls an unresolvable source-like name",
            rationale: "`.now()` or entropy constructors that resolution cannot \
                        pin down would silently escape propagation",
            severity: Severity::Warning,
        },
        TaintMeta {
            code: Code("WM0309"),
            name: "shadowed-sanitizer",
            summary: "a fn named `stable_hash` outside `webgen::seed`",
            rationale: "the sanctioned sanitizer is trusted by name; a shadow \
                        with different semantics would launder taint it \
                        does not actually remove",
            severity: Severity::Warning,
        },
        TaintMeta {
            code: Code("WM0310"),
            name: "unused-taint-allow",
            summary: "an `allow(WM03xx)` suppression that suppresses nothing",
            rationale: "stale allows outlive the flow they justified and will \
                        silently swallow the next real one",
            severity: Severity::Warning,
        },
    ]
}

/// Result of the taint pass.
#[derive(Debug, Default)]
pub struct TaintOutcome {
    /// Findings (unsorted; the engine sorts the merged batch).
    pub findings: Vec<Diagnostic>,
    /// Findings silenced by inline `allow(..)` comments.
    pub suppressed: usize,
}

/// Names whose *unresolved* calls inside a serializing function warrant
/// WM0308: clock-like methods and entropy constructors.
const SOURCE_LIKE_METHODS: &[&str] = &["now"];
const SOURCE_LIKE_FNS: &[&str] = &["thread_rng", "from_entropy", "from_os_rng", "getrandom"];

/// Run the full layer-3 pass over per-file facts: graph construction,
/// per-kind propagation, and the conservative warnings. Output is
/// identical for any permutation of `facts` (canonical node order).
pub fn analyze(facts: &[FileFacts]) -> TaintOutcome {
    let graph = build_graph(facts);
    let n = graph.nodes.len();
    let mut out = TaintOutcome::default();
    // Suppressions consumed by a WM03xx finding, for WM0310:
    // (file index, suppression index, code).
    let mut used_allows: BTreeSet<(usize, usize, &'static str)> = BTreeSet::new();

    let sanctioned = |node: usize| -> bool { SANCTIONED_FNS.contains(&graph.keys[node].as_str()) };
    let sink_eligible = |node: usize| -> bool {
        let file = graph.file(facts, node);
        !SINK_EXEMPT_CRATES.contains(&file.crate_name.as_str())
            && !graph.fact(facts, node).sinks.is_empty()
    };

    // One BFS per taint kind, caller-ward over the reverse edges.
    for kind in TaintKind::ALL {
        let mut dist: Vec<usize> = vec![usize::MAX; n];
        let mut parent: Vec<Option<(usize, Span)>> = vec![None; n];
        let mut queue: VecDeque<usize> = VecDeque::new();
        for (node, d) in dist.iter_mut().enumerate() {
            let fact = graph.fact(facts, node);
            if fact.sources.iter().any(|s| s.kind == kind)
                && !fact.sanitizes.contains(&kind)
                && !sanctioned(node)
            {
                *d = 0;
                queue.push_back(node);
            }
        }
        while let Some(m) = queue.pop_front() {
            for &caller in &graph.rev[m] {
                if dist[caller] != usize::MAX
                    || graph.fact(facts, caller).sanitizes.contains(&kind)
                    || sanctioned(caller)
                {
                    continue;
                }
                // The call site in the caller that reaches `m` (first
                // such edge — fwd edges are sorted).
                let Some(edge) = graph.fwd[caller].iter().find(|e| e.callee == m) else {
                    continue;
                };
                let span = graph.fact(facts, caller).calls[edge.call].span.clone();
                dist[caller] = dist[m] + 1;
                parent[caller] = Some((m, span));
                queue.push_back(caller);
            }
        }

        // Findings: every tainted sink-bearing function.
        for (node, &d) in dist.iter().enumerate() {
            if d == usize::MAX || !sink_eligible(node) {
                continue;
            }
            let diag = if d == 0 {
                zero_hop_finding(facts, &graph, node, kind)
            } else {
                flow_finding(facts, &graph, node, kind, &parent)
            };
            file_finding(facts, &graph, node, diag, &mut out, &mut used_allows);
        }
    }

    conservative_warnings(facts, &graph, &mut out, &mut used_allows);
    unused_allow_warnings(facts, &mut out, &used_allows);
    out
}

/// WM0306: the sink function itself reads the source.
fn zero_hop_finding(
    facts: &[FileFacts],
    graph: &CallGraph,
    node: usize,
    kind: TaintKind,
) -> Diagnostic {
    let fact = graph.fact(facts, node);
    let source = first_source(fact, kind);
    let sink = first_sink(fact);
    Diagnostic::source(
        Code("WM0306"),
        Severity::Error,
        source.span.clone(),
        format!(
            "`{}` writes serialized output but itself reads {}",
            fact.key,
            kind.describe()
        ),
    )
    .with_note(format!("source: {}", source.detail))
    .with_note(format!(
        "sink: `{}` at {}:{}:{}",
        sink.what, sink.span.file, sink.span.line, sink.span.col
    ))
    .with_note(
        "canonicalize the value (sort / stable_hash / seeded RNG) before it is \
         serialized, or justify with `// wmtree-lint: allow(WM0306)`",
    )
}

/// WM0301–WM0305: a multi-hop flow into a sink function. The primary
/// span is the call in the sink that starts the tainted path, so an
/// inline `allow(..)` sits exactly on the call being justified.
fn flow_finding(
    facts: &[FileFacts],
    graph: &CallGraph,
    node: usize,
    kind: TaintKind,
    parent: &[Option<(usize, Span)>],
) -> Diagnostic {
    // Walk sink → … → source via parent pointers.
    let mut chain: Vec<usize> = vec![node];
    let mut hops: Vec<(usize, usize, Span)> = Vec::new(); // (caller, callee, call span)
    let mut cur = node;
    while let Some((callee, span)) = &parent[cur] {
        hops.push((cur, *callee, span.clone()));
        chain.push(*callee);
        cur = *callee;
    }
    let source_node = *chain.last().expect("chain starts at the sink node"); // wmtree-lint: allow(WM0105)
    let source_fact = graph.fact(facts, source_node);
    let source = first_source(source_fact, kind);
    let sink_fact = graph.fact(facts, node);
    let sink = first_sink(sink_fact);
    let first_span = hops[0].2.clone();

    let mut d = Diagnostic::source(
        kind.code(),
        Severity::Error,
        first_span,
        format!(
            "nondeterministic {} flows into `{}`, which writes serialized output",
            kind.describe(),
            sink_fact.key
        ),
    );
    let path: Vec<&str> = chain.iter().map(|&c| graph.keys[c].as_str()).collect();
    d = d.with_note(format!("tainted call path: {}", path.join(" -> ")));
    // Per-hop locations, middle elided when the chain is long.
    const MAX_HOPS: usize = 6;
    let elided = hops.len().saturating_sub(MAX_HOPS);
    for (i, (caller, callee, span)) in hops.iter().enumerate() {
        if elided > 0 && i >= MAX_HOPS - 1 && i < hops.len() - 1 {
            if i == MAX_HOPS - 1 {
                d = d.with_note(format!("(… {} intermediate call(s) elided)", elided));
            }
            continue;
        }
        d = d.with_note(format!(
            "`{}` calls `{}` at {}:{}:{}",
            graph.keys[*caller],
            graph.fact(facts, *callee).name,
            span.file,
            span.line,
            span.col
        ));
    }
    d.with_note(format!("source: {}", source.detail))
        .with_note(format!(
            "source at {}:{}:{}",
            source.span.file, source.span.line, source.span.col
        ))
        .with_note(format!(
            "sink: `{}` at {}:{}:{}",
            sink.what, sink.span.file, sink.span.line, sink.span.col
        ))
        .with_note(format!(
            "canonicalize before the value crosses into serialization, or justify \
             with `// wmtree-lint: allow({})` at the flagged call",
            kind.code()
        ))
}

/// The source hit of `kind` with the smallest position.
fn first_source(fact: &crate::graph::FnFact, kind: TaintKind) -> &crate::graph::SourceHit {
    fact.sources
        .iter()
        .filter(|s| s.kind == kind)
        .min_by_key(|s| (s.span.line, s.span.col))
        .expect("tainted seed has a source of its kind") // wmtree-lint: allow(WM0105)
}

/// The sink op with the smallest position.
fn first_sink(fact: &crate::graph::FnFact) -> &crate::graph::SinkOp {
    fact.sinks
        .iter()
        .min_by_key(|s| (s.span.line, s.span.col))
        .expect("sink-eligible fn has a sink op") // wmtree-lint: allow(WM0105)
}

/// Route one finding through inline suppressions, recording which allow
/// consumed it (for WM0310).
fn file_finding(
    facts: &[FileFacts],
    graph: &CallGraph,
    node: usize,
    diag: Diagnostic,
    out: &mut TaintOutcome,
    used_allows: &mut BTreeSet<(usize, usize, &'static str)>,
) {
    let file_idx = graph.nodes[node].0;
    push_finding(facts, file_idx, diag, out, used_allows);
}

/// Suppression-check `diag` against its file and either record the
/// consumed allow or emit the finding.
fn push_finding(
    facts: &[FileFacts],
    file_idx: usize,
    diag: Diagnostic,
    out: &mut TaintOutcome,
    used_allows: &mut BTreeSet<(usize, usize, &'static str)>,
) {
    let crate::diag::Location::Source(span) = &diag.location else {
        out.findings.push(diag);
        return;
    };
    let file = &facts[file_idx];
    for (si, supp) in file.suppressions.iter().enumerate() {
        if supp.covers(diag.code.as_str(), span.line) {
            used_allows.insert((file_idx, si, diag.code.as_str()));
            out.suppressed += 1;
            return;
        }
    }
    out.findings.push(diag);
}

/// WM0307/WM0308/WM0309 — the warnings that surface where the
/// under-approximating resolution could hide a flow.
fn conservative_warnings(
    facts: &[FileFacts],
    graph: &CallGraph,
    out: &mut TaintOutcome,
    used_allows: &mut BTreeSet<(usize, usize, &'static str)>,
) {
    // WM0307: duplicate fully-qualified keys where a duplicate carries
    // sources. Resolution refuses ambiguous targets, so such a source
    // can never propagate — say so instead of staying silent.
    let mut i = 0;
    while i < graph.nodes.len() {
        let mut j = i + 1;
        while j < graph.nodes.len() && graph.keys[j] == graph.keys[i] {
            j += 1;
        }
        if j - i > 1 && (i..j).any(|m| !graph.fact(facts, m).sources.is_empty()) {
            let fact = graph.fact(facts, i);
            let others: Vec<String> = (i + 1..j)
                .map(|m| {
                    let f = graph.fact(facts, m);
                    format!("{}:{}", graph.file(facts, m).path, f.line)
                })
                .collect();
            let d = Diagnostic::source(
                Code("WM0307"),
                Severity::Warning,
                fn_decl_span(graph.file(facts, i), fact),
                format!(
                    "`{}` is defined {} times and a definition reads a \
                     nondeterminism source; taint cannot resolve calls to it",
                    fact.key,
                    j - i
                ),
            )
            .with_note(format!("also defined at {}", others.join(", ")))
            .with_note("rename one definition so call resolution is unambiguous");
            push_finding(facts, graph.nodes[i].0, d, out, used_allows);
        }
        i = j;
    }

    for node in 0..graph.nodes.len() {
        let fact = graph.fact(facts, node);
        let file = graph.file(facts, node);
        let file_idx = graph.nodes[node].0;

        // WM0309: a shadow of the sanctioned sanitizer name.
        if fact.name == "stable_hash" && !SANCTIONED_FNS.contains(&fact.key.as_str()) {
            let d = Diagnostic::source(
                Code("WM0309"),
                Severity::Warning,
                fn_decl_span(file, fact),
                format!(
                    "`{}` shadows the sanctioned sanitizer `webgen::seed::stable_hash`",
                    fact.key
                ),
            )
            .with_note(
                "taint trusts `stable_hash` by name as a deterministic \
                 canonicalizer; a shadow with different semantics would \
                 launder taint it does not remove — rename it",
            );
            push_finding(facts, file_idx, d, out, used_allows);
        }

        // WM0308: unresolved source-like calls inside a serializing fn.
        if SINK_EXEMPT_CRATES.contains(&file.crate_name.as_str()) || fact.sinks.is_empty() {
            continue;
        }
        for (ci, call) in fact.calls.iter().enumerate() {
            if graph.resolved[node][ci].is_some() {
                continue;
            }
            let Some(name) = call.segments.last() else {
                continue;
            };
            let source_like = (call.is_method && SOURCE_LIKE_METHODS.contains(&name.as_str()))
                || SOURCE_LIKE_FNS.contains(&name.as_str());
            if !source_like {
                continue;
            }
            let d = Diagnostic::source(
                Code("WM0308"),
                Severity::Warning,
                call.span.clone(),
                format!(
                    "`{}` writes serialized output and calls `{}`, which looks \
                     like a nondeterminism source but cannot be resolved",
                    fact.key, name
                ),
            )
            .with_note(
                "taint propagation drops unresolvable calls; qualify the path \
                 (or import the fn directly) so the flow can be tracked",
            );
            push_finding(facts, file_idx, d, out, used_allows);
        }
    }
}

/// WM0310: `allow(WM03xx)` comments that suppressed nothing this run.
fn unused_allow_warnings(
    facts: &[FileFacts],
    out: &mut TaintOutcome,
    used_allows: &BTreeSet<(usize, usize, &'static str)>,
) {
    for (fi, file) in facts.iter().enumerate() {
        for (si, supp) in file.suppressions.iter().enumerate() {
            if supp.is_test {
                continue;
            }
            for code in &supp.codes {
                if !code.starts_with("WM03") || code == "WM0310" {
                    continue;
                }
                if used_allows
                    .iter()
                    .any(|(f, s, c)| *f == fi && *s == si && c == code)
                {
                    continue;
                }
                let span = Span {
                    file: file.path.clone(),
                    line: supp.line,
                    col: 1,
                    text: supp.text.clone(),
                    len: supp.text.trim_end().chars().count().max(1),
                };
                let d = Diagnostic::source(
                    Code("WM0310"),
                    Severity::Warning,
                    span,
                    format!("`allow({code})` suppresses nothing — no {code} finding here"),
                )
                .with_note(
                    "stale allows silently swallow the next real flow; remove the \
                     suppression or re-justify it",
                );
                // WM0310 itself honors a covering allow(WM0310), counted
                // as suppressed without feeding back into usage tracking.
                if file.is_suppressed("WM0310", supp.line) {
                    out.suppressed += 1;
                } else {
                    out.findings.push(d);
                }
            }
        }
    }
}

/// Span anchored at a fn's declaration line.
fn fn_decl_span(file: &FileFacts, fact: &crate::graph::FnFact) -> Span {
    Span {
        file: file.path.clone(),
        line: fact.line,
        col: fact.col,
        text: fact.line_text.clone(),
        len: fact.name.chars().count().max(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::SourceFile;

    fn facts(path: &str, crate_name: &str, src: &str) -> FileFacts {
        FileFacts::collect(&SourceFile::parse(path, crate_name, src, false))
    }

    #[test]
    fn sink_classification() {
        let seg = |s: &[&str]| s.iter().map(|x| x.to_string()).collect::<Vec<_>>();
        assert_eq!(
            classify_sink(&seg(&["serde_json", "to_string"]), false).as_deref(),
            Some("serde_json::to_string")
        );
        assert_eq!(
            classify_sink(&seg(&["std", "fs", "write"]), false).as_deref(),
            Some("fs::write")
        );
        assert_eq!(
            classify_sink(&seg(&["write_all"]), true).as_deref(),
            Some("write_all")
        );
        assert_eq!(classify_sink(&seg(&["to_string"]), true), None);
        assert_eq!(classify_sink(&seg(&["fs", "read"]), false), None);
    }

    #[test]
    fn multi_hop_flow_is_flagged_with_path() {
        let clock = facts(
            "crates/telemetry/src/clock.rs",
            "telemetry",
            "pub fn stamp() -> u64 { SystemTime::now(); 0 }",
        );
        let mid = facts(
            "crates/core/src/mid.rs",
            "core",
            "pub fn annotate() -> u64 { wmtree_telemetry::clock::stamp() }",
        );
        let sink = facts(
            "crates/core/src/report.rs",
            "core",
            "pub fn write_report(rows: &[u64]) {\n\
             \x20   let tag = crate::mid::annotate();\n\
             \x20   let body = serde_json::to_string(rows);\n\
             \x20   std::fs::write(\"report.json\", body);\n\
             }",
        );
        let out = analyze(&[clock, mid, sink]);
        let flows: Vec<&Diagnostic> = out
            .findings
            .iter()
            .filter(|d| d.code.as_str() == "WM0301")
            .collect();
        assert_eq!(flows.len(), 1, "findings: {:?}", out.findings);
        let d = flows[0];
        assert!(d.message.contains("core::report::write_report"));
        let path_note = d
            .notes
            .iter()
            .find(|n| n.starts_with("tainted call path:"))
            .expect("path note"); // wmtree-lint: allow(WM0105)
        assert_eq!(
            path_note,
            "tainted call path: core::report::write_report -> core::mid::annotate \
             -> telemetry::clock::stamp"
        );
    }

    #[test]
    fn sanitizer_stops_propagation() {
        let hash = facts(
            "crates/core/src/h.rs",
            "core",
            "pub fn collect_keys() -> Vec<u32> {\n\
             \x20   let m: HashMap<u32, u32> = HashMap::new();\n\
             \x20   m.iter().map(|(k, _)| *k).collect()\n\
             }\n\
             pub fn canonical() -> Vec<u32> {\n\
             \x20   let mut v = collect_keys(); v.sort(); v\n\
             }\n\
             pub fn write_it() {\n\
             \x20   let v = canonical();\n\
             \x20   std::fs::write(\"x\", serde_json::to_string(&v));\n\
             }",
        );
        let out = analyze(&[hash]);
        assert!(
            out.findings.iter().all(|d| d.code.as_str() != "WM0302"),
            "sort() in `canonical` must stop hash-order taint: {:?}",
            out.findings
        );
    }

    #[test]
    fn zero_hop_source_in_sink_is_wm0306() {
        let f = facts(
            "crates/core/src/z.rs",
            "core",
            "pub fn dump(rows: &[u64]) {\n\
             \x20   let t = SystemTime::now();\n\
             \x20   std::fs::write(\"x\", serde_json::to_string(rows));\n\
             }",
        );
        let out = analyze(&[f]);
        assert!(
            out.findings.iter().any(|d| d.code.as_str() == "WM0306"),
            "{:?}",
            out.findings
        );
    }

    #[test]
    fn suppression_consumes_and_unused_allow_warns() {
        let suppressed = facts(
            "crates/core/src/s.rs",
            "core",
            "pub fn dump(rows: &[u64]) {\n\
             \x20   // wmtree-lint: allow(WM0306)\n\
             \x20   let t = SystemTime::now();\n\
             \x20   std::fs::write(\"x\", serde_json::to_string(rows));\n\
             }",
        );
        let out = analyze(&[suppressed]);
        assert!(out.findings.iter().all(|d| d.code.as_str() != "WM0306"));
        assert_eq!(out.suppressed, 1);

        let stale = facts(
            "crates/core/src/t.rs",
            "core",
            "// wmtree-lint: allow(WM0301)\npub fn quiet() -> u64 { 7 }",
        );
        let out = analyze(&[stale]);
        assert!(
            out.findings.iter().any(|d| d.code.as_str() == "WM0310"),
            "{:?}",
            out.findings
        );
    }

    #[test]
    fn telemetry_sinks_are_exempt() {
        let f = facts(
            "crates/telemetry/src/snap.rs",
            "telemetry",
            "pub fn snapshot() {\n\
             \x20   let t = Instant::now();\n\
             \x20   std::fs::write(\"progress.json\", serde_json::to_string(&1));\n\
             }",
        );
        let out = analyze(&[f]);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn catalog_is_code_sorted_unique_and_complete() {
        let cat = catalog();
        assert_eq!(cat.len(), 10);
        let codes: Vec<&str> = cat.iter().map(|m| m.code.as_str()).collect();
        let mut sorted = codes.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(codes, sorted);
        assert_eq!(codes.first(), Some(&"WM0301"));
        assert_eq!(codes.last(), Some(&"WM0310"));
    }
}
