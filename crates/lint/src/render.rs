//! Diagnostic renderers: rustc-style pretty text and stable JSON.
//!
//! Both renderers expect their input already in canonical order (the
//! engine sorts with [`crate::diag::sort_diagnostics`]); given the same
//! findings they produce byte-identical output on every run — the JSON
//! form is built by hand rather than through a serializer precisely so
//! nothing about field order or float formatting can drift.

use crate::diag::{Diagnostic, Location, Severity};

/// Render a batch in rustc style:
///
/// ```text
/// error[WM0101]: wall-clock read `Instant::now` in deterministic code
///   --> crates/foo/src/bar.rs:12:13
///    |
/// 12 |     let t = Instant::now();
///    |             ^^^^^^^^^^^^
///    = note: results must depend only on the experiment seed...
/// ```
pub fn render_pretty(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&format!(
            "{}[{}]: {}\n",
            d.severity.label(),
            d.code.as_str(),
            d.message
        ));
        match &d.location {
            Location::Source(s) => {
                let line_no = s.line.to_string();
                let gutter = " ".repeat(line_no.len());
                out.push_str(&format!("  --> {}:{}:{}\n", s.file, s.line, s.col));
                out.push_str(&format!("{gutter}  |\n"));
                out.push_str(&format!("{line_no} | {}\n", s.text));
                let pad = " ".repeat(s.col.saturating_sub(1));
                let carets = "^".repeat(s.len.max(1));
                out.push_str(&format!("{gutter} | {pad}{carets}\n"));
                for note in &d.notes {
                    out.push_str(&format!("{gutter} = note: {note}\n"));
                }
            }
            Location::Artifact(p) => {
                out.push_str(&format!("  --> {p}\n"));
                for note in &d.notes {
                    out.push_str(&format!("   = note: {note}\n"));
                }
            }
        }
        out.push('\n');
    }
    out
}

/// Render a one-line summary (`error: 2 errors, 1 warning emitted`).
pub fn render_summary(diags: &[Diagnostic]) -> String {
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags.len() - errors;
    match (errors, warnings) {
        (0, 0) => "clean: no findings".to_string(),
        (e, 0) => format!("error: {e} finding(s) emitted"),
        (0, w) => format!("warning: {w} finding(s) emitted"),
        (e, w) => format!("error: {e} error(s), {w} warning(s) emitted"),
    }
}

/// Render a batch as stable JSON. Schema:
///
/// ```json
/// {"version":1,
///  "findings":[{"code":"WM0101","severity":"error",
///               "location":"crates/x.rs:1:2","file":"crates/x.rs",
///               "line":1,"col":2,"message":"...","notes":["..."]}],
///  "summary":{"errors":1,"warnings":0}}
/// ```
///
/// Artifact findings have `"file":null,"line":0,"col":0` and carry the
/// artifact path in `"location"`.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("{\"version\":1,\"findings\":[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"code\":");
        json_str(&mut out, d.code.as_str());
        out.push_str(",\"severity\":");
        json_str(&mut out, d.severity.label());
        out.push_str(",\"location\":");
        json_str(&mut out, &d.location.display());
        match &d.location {
            Location::Source(s) => {
                out.push_str(",\"file\":");
                json_str(&mut out, &s.file);
                out.push_str(&format!(",\"line\":{},\"col\":{}", s.line, s.col));
            }
            Location::Artifact(_) => {
                out.push_str(",\"file\":null,\"line\":0,\"col\":0");
            }
        }
        out.push_str(",\"message\":");
        json_str(&mut out, &d.message);
        out.push_str(",\"notes\":[");
        for (j, n) in d.notes.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            json_str(&mut out, n);
        }
        out.push_str("]}");
    }
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    out.push_str(&format!(
        "],\"summary\":{{\"errors\":{},\"warnings\":{}}}}}",
        errors,
        diags.len() - errors
    ));
    out.push('\n');
    out
}

/// Append a JSON string literal (with escaping) to `out`. Shared with
/// the SARIF renderer ([`crate::sarif`]) so both emit identical escapes.
pub(crate) fn json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{Code, Span};

    fn sample() -> Vec<Diagnostic> {
        vec![
            Diagnostic::source(
                Code("WM0101"),
                Severity::Error,
                Span {
                    file: "crates/tree/src/x.rs".into(),
                    line: 12,
                    col: 13,
                    text: "    let t = Instant::now();".into(),
                    len: 12,
                },
                "wall-clock read `Instant::now` in deterministic code",
            )
            .with_note("use virtual time"),
            Diagnostic::artifact(
                Code("WM0201"),
                Severity::Warning,
                "deptree:node[3]",
                "bad root",
            ),
        ]
    }

    #[test]
    fn pretty_has_rustc_shape() {
        let text = render_pretty(&sample());
        assert!(text.contains("error[WM0101]: wall-clock read"));
        assert!(text.contains("  --> crates/tree/src/x.rs:12:13"));
        assert!(text.contains("12 |     let t = Instant::now();"));
        assert!(text.contains("^^^^^^^^^^^^"));
        assert!(text.contains("= note: use virtual time"));
        assert!(text.contains("warning[WM0201]: bad root"));
    }

    #[test]
    fn caret_alignment() {
        let text = render_pretty(&sample());
        let lines: Vec<&str> = text.lines().collect();
        let src_line = lines.iter().position(|l| l.starts_with("12 | ")).unwrap();
        let caret_line = lines[src_line + 1];
        // Caret column: "12 | " prefix is "   | " on the caret line,
        // then col-1 spaces. "Instant" starts at char 13 of the source.
        let caret_start = caret_line.find('^').unwrap();
        let prefix_len = "   | ".len();
        assert_eq!(caret_start - prefix_len, 12); // col 13 → 12 chars in
    }

    #[test]
    fn json_is_stable_and_escaped() {
        let mut diags = sample();
        diags[0].message = "has \"quotes\" and\nnewline".into();
        let a = render_json(&diags);
        let b = render_json(&diags);
        assert_eq!(a, b);
        assert!(a.contains("\\\"quotes\\\""));
        assert!(a.contains("\\n"));
        assert!(a.contains("\"summary\":{\"errors\":1,\"warnings\":1}"));
        assert!(a.ends_with('\n'));
    }

    #[test]
    fn summary_wording() {
        assert_eq!(render_summary(&[]), "clean: no findings");
        assert!(render_summary(&sample()).contains("1 error(s), 1 warning(s)"));
    }
}
