//! WM0101 — wall-clock reads in deterministic code.

use super::{span_at, Rule, RuleMeta};
use crate::diag::{Code, Diagnostic, Severity};
use crate::lexer::SourceFile;

/// Flags `SystemTime::now()` / `Instant::now()` outside the telemetry
/// and bench crates. PR 1's byte-identity tests caught wall-clock time
/// leaking into results once; this forbids the whole class statically.
pub struct WallClock;

const META: RuleMeta = RuleMeta {
    code: Code("WM0101"),
    name: "wall-clock",
    summary: "`SystemTime::now`/`Instant::now` outside telemetry/bench",
    rationale: "results must be a pure function of the seed; clock reads \
                make reruns diverge byte-for-byte",
    only: None,
    exempt: &["telemetry", "bench"],
    // Strict: even test code in pipeline crates must not read the clock
    // (a time-dependent assertion is a flaky assertion).
    test_exempt: false,
    severity: Severity::Error,
};

impl Rule for WallClock {
    fn meta(&self) -> &RuleMeta {
        &META
    }

    fn check(&self, file: &SourceFile) -> Vec<Diagnostic> {
        let toks = &file.tokens;
        let mut out = Vec::new();
        for i in 0..toks.len() {
            let is_clock_type = toks[i].is_ident("SystemTime") || toks[i].is_ident("Instant");
            if is_clock_type
                && toks.get(i + 1).is_some_and(|t| t.is_punct("::"))
                && toks.get(i + 2).is_some_and(|t| t.is_ident("now"))
            {
                let d = Diagnostic::source(
                    META.code,
                    META.severity,
                    span_at(file, toks, i, i + 2),
                    format!(
                        "wall-clock read `{}::now` in deterministic code",
                        toks[i].text
                    ),
                )
                .with_note(
                    "results must depend only on the experiment seed; use virtual \
                     time from the visit simulation, or move timing into \
                     `wmtree-telemetry`",
                );
                out.push(d);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Diagnostic> {
        WallClock.check(&SourceFile::parse("x.rs", "tree", src, false))
    }

    #[test]
    fn positive_instant_and_systemtime() {
        let src = "fn f() { let a = Instant::now(); let b = std::time::SystemTime::now(); }";
        let hits = lint(src);
        assert_eq!(hits.len(), 2);
        assert!(hits[0].message.contains("Instant::now"));
        assert!(hits[1].message.contains("SystemTime::now"));
    }

    #[test]
    fn negative_other_now_and_comments() {
        // `now` on other receivers, comments, and strings are all fine.
        let src = r#"
            // Instant::now() in a comment
            fn f(clock: &VirtualClock) -> u64 {
                let s = "SystemTime::now";
                clock.now()
            }
        "#;
        assert!(lint(src).is_empty());
    }

    #[test]
    fn span_underlines_whole_path() {
        let hits = lint("let t = Instant::now();");
        assert_eq!(hits.len(), 1);
        match &hits[0].location {
            crate::diag::Location::Source(s) => {
                assert_eq!(s.col, 9);
                assert_eq!(s.len, "Instant::now".len());
            }
            _ => unreachable!(),
        }
    }
}
