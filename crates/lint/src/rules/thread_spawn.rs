//! WM0106 — detached `thread::spawn` outside the sanctioned worker pools.

use super::{span_at, Rule, RuleMeta};
use crate::diag::{Code, Diagnostic, Severity};
use crate::lexer::SourceFile;

/// Flags raw `thread::spawn(..)` anywhere in the workspace. All
/// parallelism must go through the scoped worker-pool helpers
/// (`wmtree_analysis::par::par_map`, the crawler's commander pool, the
/// telemetry flusher), which join their workers and merge results in a
/// deterministic order. A detached spawn can outlive the stage that
/// started it, race result merging, and silently reorder output —
/// exactly the class of bug the worker-count byte-identity tests exist
/// to catch. Scoped `scope.spawn(..)` is not flagged: `thread::scope`
/// joins at the end of the scope by construction.
pub struct ThreadSpawn;

const META: RuleMeta = RuleMeta {
    code: Code("WM0106"),
    name: "thread-spawn",
    summary: "raw `thread::spawn` outside the sanctioned worker pools",
    rationale: "detached threads outlive their stage and race deterministic \
                result merging; use a scoped pool (`par::par_map`, the \
                commander) that joins and merges in input order",
    only: None,
    exempt: &[],
    // Test code must not leak threads either — a detached thread in a
    // test races the process exit and other tests' assertions.
    test_exempt: false,
    severity: Severity::Error,
};

impl Rule for ThreadSpawn {
    fn meta(&self) -> &RuleMeta {
        &META
    }

    fn check(&self, file: &SourceFile) -> Vec<Diagnostic> {
        let toks = &file.tokens;
        let mut out = Vec::new();
        for i in 0..toks.len() {
            if toks[i].is_ident("thread")
                && toks.get(i + 1).is_some_and(|t| t.is_punct("::"))
                && toks.get(i + 2).is_some_and(|t| t.is_ident("spawn"))
            {
                let d = Diagnostic::source(
                    META.code,
                    META.severity,
                    span_at(file, toks, i, i + 2),
                    "detached `thread::spawn` outside a sanctioned worker pool".to_string(),
                )
                .with_note(
                    "spawn through a joining scope instead: \
                     `wmtree_analysis::par::par_map` for per-item fan-out, or \
                     `std::thread::scope` with handles joined before the stage \
                     returns",
                );
                out.push(d);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Diagnostic> {
        ThreadSpawn.check(&SourceFile::parse("x.rs", "analysis", src, false))
    }

    #[test]
    fn positive_bare_and_pathed_spawn() {
        let src = "fn f() { thread::spawn(|| {}); std::thread::spawn(work); }";
        let hits = lint(src);
        assert_eq!(hits.len(), 2);
        assert!(hits[0].message.contains("thread::spawn"));
    }

    #[test]
    fn negative_scoped_spawn_and_scope() {
        // Scoped spawns join by construction; `thread::scope` itself is fine.
        let src = r#"
            fn f(items: &[u32]) {
                std::thread::scope(|scope| {
                    let h = scope.spawn(|| {});
                    h.join().unwrap();
                });
            }
        "#;
        assert!(lint(src).is_empty());
    }

    #[test]
    fn negative_comments_and_strings() {
        let src = r#"
            // thread::spawn in a comment is fine
            fn f() { let s = "thread::spawn"; }
        "#;
        assert!(lint(src).is_empty());
    }
}
