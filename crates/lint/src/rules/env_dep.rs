//! WM0104 — process-environment dependence in deterministic crates.

use super::{span_at, Rule, RuleMeta, PIPELINE_CRATES};
use crate::diag::{Code, Diagnostic, Severity};
use crate::lexer::SourceFile;

/// Flags `env::var`/`env::var_os` and `thread::current().id()` in the
/// deterministic pipeline crates. Environment variables and thread
/// identity are exactly the kind of setup-dependent input the paper
/// warns about (chromiumoxide-style crawlers routinely leak both into
/// fetch behaviour).
pub struct EnvDep;

const META: RuleMeta = RuleMeta {
    code: Code("WM0104"),
    name: "env-dependence",
    summary: "`std::env::var` / `thread::current().id()` in pipeline crates",
    rationale: "pipeline behaviour must not depend on the host environment \
                or worker identity, or two setups measure different things",
    only: Some(PIPELINE_CRATES),
    exempt: &[],
    test_exempt: true,
    severity: Severity::Error,
};

impl Rule for EnvDep {
    fn meta(&self) -> &RuleMeta {
        &META
    }

    fn check(&self, file: &SourceFile) -> Vec<Diagnostic> {
        let toks = &file.tokens;
        let mut out = Vec::new();
        for i in 0..toks.len() {
            // env :: var / env :: var_os / env :: vars
            if toks[i].is_ident("env")
                && toks.get(i + 1).is_some_and(|t| t.is_punct("::"))
                && toks.get(i + 2).is_some_and(|t| {
                    t.is_ident("var") || t.is_ident("var_os") || t.is_ident("vars")
                })
            {
                out.push(
                    Diagnostic::source(
                        META.code,
                        META.severity,
                        span_at(file, toks, i, i + 2),
                        format!(
                            "environment read `env::{}` in a deterministic crate",
                            toks[i + 2].text
                        ),
                    )
                    .with_note(
                        "thread all configuration through `ExperimentConfig` so the run \
                         is fully described by its manifest",
                    ),
                );
            }
            // thread :: current ( ) . id (
            if toks[i].is_ident("current")
                && i >= 2
                && toks[i - 1].is_punct("::")
                && toks[i - 2].is_ident("thread")
                && toks.get(i + 3).is_some_and(|t| t.is_punct("."))
                && toks.get(i + 4).is_some_and(|t| t.is_ident("id"))
            {
                out.push(
                    Diagnostic::source(
                        META.code,
                        META.severity,
                        span_at(file, toks, i - 2, i + 4),
                        "thread-identity read `thread::current().id()` in a deterministic crate",
                    )
                    .with_note(
                        "shard results must merge identically regardless of which worker \
                         produced them; pass an explicit shard index instead",
                    ),
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Diagnostic> {
        EnvDep.check(&SourceFile::parse("x.rs", "crawler", src, false))
    }

    #[test]
    fn positive_env_var_and_thread_id() {
        let src =
            "fn f() { let p = std::env::var(\"PROXY\"); let t = std::thread::current().id(); }";
        let hits = lint(src);
        assert_eq!(hits.len(), 2);
        assert!(hits[0].message.contains("env::var"));
        assert!(hits[1].message.contains("thread::current"));
    }

    #[test]
    fn negative_args_and_other_idents() {
        // env::args (CLI parsing) and unrelated `current` calls pass.
        let src =
            "fn f() { let a: Vec<_> = std::env::args().collect(); let c = cursor.current(); }";
        assert!(lint(src).is_empty());
    }
}
