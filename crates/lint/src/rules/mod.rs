//! The source-lint rules (layer 1, `WM01xx`).
//!
//! Each rule is a [`Rule`] implementation over a lexed [`SourceFile`].
//! Crate applicability is part of the rule's metadata: a rule either
//! applies everywhere except an exempt list (`only: None`) or only to a
//! named set of crates (`only: Some(..)`). Rules marked `test_exempt`
//! skip `#[cfg(test)]` regions, `tests/`, `benches/`, and `examples/`.

mod env_dep;
mod hash_iter;
mod rng;
mod thread_spawn;
mod unwrap;
mod wall_clock;

use crate::diag::{Code, Diagnostic, Severity, Span};
use crate::lexer::{SourceFile, Token};

pub use env_dep::EnvDep;
pub use hash_iter::HashIter;
pub use rng::UnseededRng;
pub use thread_spawn::ThreadSpawn;
pub use unwrap::UnwrapInPipeline;
pub use wall_clock::WallClock;

/// The crates whose outputs are serialized into results (CSV, JSON,
/// reports) and must therefore iterate in a stable order.
pub const RESULT_CRATES: &[&str] = &["analysis", "tree", "core", "crawler", "bundle"];

/// The crates forming the deterministic pipeline: everything that runs
/// between seed and report. `telemetry` and `bench` are measurement
/// harness code and deliberately excluded.
pub const PIPELINE_CRATES: &[&str] = &[
    "analysis",
    "tree",
    "core",
    "crawler",
    "bundle",
    "browser",
    "net",
    "url",
    "webgen",
    "filterlist",
    "stats",
    "lint",
];

/// Static description of a rule (also drives the `rules` subcommand and
/// the DESIGN.md catalog).
#[derive(Debug, Clone, Copy)]
pub struct RuleMeta {
    /// Stable code (`WM0101`...).
    pub code: Code,
    /// Kebab-case rule name.
    pub name: &'static str,
    /// One-line summary of what is flagged.
    pub summary: &'static str,
    /// Why the rule exists (ties back to the paper's determinism needs).
    pub rationale: &'static str,
    /// `None` → applies to every crate not in `exempt`;
    /// `Some(list)` → applies only to the listed crates.
    pub only: Option<&'static [&'static str]>,
    /// Crates the rule never applies to.
    pub exempt: &'static [&'static str],
    /// Skip test code.
    pub test_exempt: bool,
    /// Severity of findings.
    pub severity: Severity,
}

impl RuleMeta {
    /// Does the rule apply to a crate?
    pub fn applies_to(&self, crate_name: &str) -> bool {
        if self.exempt.contains(&crate_name) {
            return false;
        }
        match self.only {
            Some(list) => list.contains(&crate_name),
            None => true,
        }
    }
}

/// One source lint.
pub trait Rule {
    /// The rule's metadata.
    fn meta(&self) -> &RuleMeta;
    /// Scan one file. Crate applicability, test exemption, and
    /// suppressions are handled by the engine; `check` reports every
    /// raw hit.
    fn check(&self, file: &SourceFile) -> Vec<Diagnostic>;
}

/// All rules, in code order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(WallClock),
        Box::new(HashIter),
        Box::new(UnseededRng),
        Box::new(EnvDep),
        Box::new(UnwrapInPipeline),
        Box::new(ThreadSpawn),
    ]
}

/// Metadata of every rule, in code order (for `wmtree-lint rules`).
pub fn catalog() -> Vec<RuleMeta> {
    all_rules().iter().map(|r| *r.meta()).collect()
}

/// Build a [`Span`] for the token at `idx`, underlining through the
/// token at `end_idx` when they share a line.
pub(crate) fn span_at(file: &SourceFile, tokens: &[Token], idx: usize, end_idx: usize) -> Span {
    let t = &tokens[idx];
    let len = if end_idx > idx && tokens[end_idx].line == t.line {
        let end = &tokens[end_idx];
        (end.col + end.text.chars().count()).saturating_sub(t.col)
    } else {
        t.text.chars().count()
    }
    .max(1);
    Span {
        file: file.path.clone(),
        line: t.line,
        col: t.col,
        text: file.line_text(t.line).to_string(),
        len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn applicability() {
        let only = RuleMeta {
            code: Code("WM9999"),
            name: "t",
            summary: "",
            rationale: "",
            only: Some(&["tree", "core"]),
            exempt: &[],
            test_exempt: true,
            severity: Severity::Error,
        };
        assert!(only.applies_to("tree"));
        assert!(!only.applies_to("telemetry"));

        let exempting = RuleMeta {
            only: None,
            exempt: &["telemetry", "bench"],
            ..only
        };
        assert!(exempting.applies_to("tree"));
        assert!(exempting.applies_to("suite"));
        assert!(!exempting.applies_to("bench"));
    }

    #[test]
    fn catalog_is_code_sorted_and_unique() {
        let cat = catalog();
        let codes: Vec<&str> = cat.iter().map(|m| m.code.as_str()).collect();
        let mut sorted = codes.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(codes, sorted, "rule codes must be unique and ordered");
        assert_eq!(cat.len(), 6);
    }
}
