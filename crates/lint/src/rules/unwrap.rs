//! WM0105 — `unwrap()`/`expect()` in non-test pipeline code.

use super::{span_at, Rule, RuleMeta, PIPELINE_CRATES};
use crate::diag::{Code, Diagnostic, Severity};
use crate::lexer::SourceFile;

/// Flags `.unwrap()` and `.expect(..)` outside test code in the
/// pipeline crates. A panic mid-crawl silently drops a shard's worth of
/// visits; fallible paths must surface typed errors instead.
///
/// `unwrap_or`, `unwrap_or_else`, `unwrap_or_default` are fine — they
/// are total. A genuinely infallible case (e.g. joining a worker
/// thread whose panic should propagate) can carry an inline
/// `// wmtree-lint: allow(WM0105)` with its justification.
pub struct UnwrapInPipeline;

const META: RuleMeta = RuleMeta {
    code: Code("WM0105"),
    name: "unwrap-in-pipeline",
    summary: "`.unwrap()` / `.expect(..)` in non-test pipeline code",
    rationale: "a panic mid-crawl aborts the whole shard; fallible pipeline \
                paths must return typed errors the commander can account for",
    only: Some(PIPELINE_CRATES),
    exempt: &[],
    test_exempt: true,
    severity: Severity::Error,
};

impl Rule for UnwrapInPipeline {
    fn meta(&self) -> &RuleMeta {
        &META
    }

    fn check(&self, file: &SourceFile) -> Vec<Diagnostic> {
        let toks = &file.tokens;
        let mut out = Vec::new();
        for i in 0..toks.len() {
            let is_call = i >= 1
                && toks[i - 1].is_punct(".")
                && toks.get(i + 1).is_some_and(|t| t.is_punct("("));
            if !is_call {
                continue;
            }
            if toks[i].is_ident("unwrap") || toks[i].is_ident("expect") {
                out.push(
                    Diagnostic::source(
                        META.code,
                        META.severity,
                        span_at(file, toks, i, i),
                        format!("`.{}()` in non-test pipeline code", toks[i].text),
                    )
                    .with_note(
                        "return a typed error (or use `unwrap_or`/`total_cmp`/a match); \
                         if the call is provably infallible, justify it with \
                         `// wmtree-lint: allow(WM0105)`",
                    ),
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Diagnostic> {
        UnwrapInPipeline.check(&SourceFile::parse("x.rs", "analysis", src, false))
    }

    #[test]
    fn positive_unwrap_and_expect() {
        let src = "fn f() { let a = x.unwrap(); let b = y.expect(\"msg\"); }";
        assert_eq!(lint(src).len(), 2);
    }

    #[test]
    fn negative_total_variants_and_doc_comments() {
        let src = r#"
            /// Example: `v.unwrap()` in a doc comment is fine.
            fn f() {
                let a = x.unwrap_or(0);
                let b = y.unwrap_or_else(|| 1);
                let c = z.unwrap_or_default();
            }
        "#;
        assert!(lint(src).is_empty());
    }

    #[test]
    fn negative_inside_cfg_test_is_raw_hit_but_engine_filters() {
        // The rule itself reports raw hits; test-exemption is the
        // engine's job — verified here via the meta flag.
        assert!(UnwrapInPipeline.meta().test_exempt);
    }
}
