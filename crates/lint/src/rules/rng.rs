//! WM0103 — unseeded randomness.

use super::{span_at, Rule, RuleMeta};
use crate::diag::{Code, Diagnostic, Severity};
use crate::lexer::SourceFile;

/// Flags entropy-seeded RNG construction (`thread_rng`, `from_entropy`,
/// `OsRng`, ...) outside test code. Every RNG in the pipeline must
/// derive from the experiment seed so a run is replayable.
pub struct UnseededRng;

/// Constructors that pull entropy from the OS instead of the seed.
const ENTROPY_SOURCES: &[&str] = &[
    "thread_rng",
    "from_entropy",
    "from_os_rng",
    "OsRng",
    "getrandom",
];

const META: RuleMeta = RuleMeta {
    code: Code("WM0103"),
    name: "unseeded-rng",
    summary: "entropy-seeded RNG construction outside tests",
    rationale: "the paper separates setup effects from web non-determinism; \
                an OS-entropy RNG makes the 'web' different on every run",
    only: None,
    exempt: &[],
    test_exempt: true,
    severity: Severity::Error,
};

impl Rule for UnseededRng {
    fn meta(&self) -> &RuleMeta {
        &META
    }

    fn check(&self, file: &SourceFile) -> Vec<Diagnostic> {
        let toks = &file.tokens;
        let mut out = Vec::new();
        for i in 0..toks.len() {
            if ENTROPY_SOURCES.iter().any(|s| toks[i].is_ident(s)) {
                out.push(
                    Diagnostic::source(
                        META.code,
                        META.severity,
                        span_at(file, toks, i, i),
                        format!("entropy-seeded RNG `{}` in pipeline code", toks[i].text),
                    )
                    .with_note(
                        "derive every RNG from the experiment seed \
                         (`StdRng::from_seed` / the crate's `SeedMixer`) so runs replay",
                    ),
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Diagnostic> {
        UnseededRng.check(&SourceFile::parse("x.rs", "webgen", src, false))
    }

    #[test]
    fn positive_thread_rng_and_from_entropy() {
        let src = "fn f() { let mut r = rand::thread_rng(); let s = StdRng::from_entropy(); }";
        let hits = lint(src);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn negative_seeded_construction() {
        let src =
            "fn f(seed: u64) { let r = StdRng::from_seed(seed); let m = SeedMixer::new(seed); }";
        assert!(lint(src).is_empty());
    }
}
