//! WM0102 — iteration over `HashMap`/`HashSet` in result-producing
//! crates.
//!
//! `std`'s hash containers iterate in a randomized order (SipHash keyed
//! per-process), so any loop over one that feeds serialized output
//! makes two identical runs produce different bytes. The rule is a
//! three-step heuristic over the token stream:
//!
//! 1. **Track hash bindings.** Every `let` binding (or struct field)
//!    whose declared or constructed type mentions `HashMap`/`HashSet`
//!    is recorded by name; `BTreeMap`/`BTreeSet` bindings are recorded
//!    separately as *ordered* names.
//! 2. **Find iteration sites.** A site is `name.iter()`, `.keys()`,
//!    `.values()`, `.values_mut()`, `.iter_mut()`, `.into_iter()`,
//!    `.drain()` on a tracked hash name, or a `for .. in` header whose
//!    iterated expression contains one.
//! 3. **Look for an order sink.** The site is fine if its statement (for
//!    method chains) or loop body plus the three following lines (for
//!    `for` loops) restores or never needed an order: a `sort*` call, a
//!    collect into / insert into a `BTree*` container, or an
//!    order-insensitive reduction (`sum`, `count`, `len`, `min`, `max`,
//!    `all`, `any`, or a `+=` accumulation).
//!
//! The heuristic under-approximates (a hash map received as a function
//! parameter is not tracked) and over-approximates (a sink anywhere in
//! the window counts); both are deliberate — the rule exists to keep
//! hash iteration *out of result crates entirely*, and the escape hatch
//! is an inline `allow` with a written justification.

use super::{span_at, Rule, RuleMeta, RESULT_CRATES};
use crate::diag::{Code, Diagnostic, Severity};
use crate::lexer::{SourceFile, Token, TokenKind};

/// The WM0102 rule value.
pub struct HashIter;

const META: RuleMeta = RuleMeta {
    code: Code("WM0102"),
    name: "hash-iteration",
    summary: "iterating a `HashMap`/`HashSet` in a result-producing crate",
    rationale: "hash iteration order is randomized per process; anything it \
                feeds into CSV/JSON output breaks byte-identity across runs",
    only: Some(RESULT_CRATES),
    exempt: &[],
    test_exempt: true,
    severity: Severity::Error,
};

/// Iterator-producing methods on hash containers.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "drain",
];

/// Order-insensitive reductions: consuming an unordered iterator with
/// these cannot leak the order into the result.
const REDUCTIONS: &[&str] = &[
    "sum",
    "count",
    "len",
    "min",
    "max",
    "min_by",
    "max_by",
    "min_by_key",
    "max_by_key",
    "all",
    "any",
    "product",
];

impl Rule for HashIter {
    fn meta(&self) -> &RuleMeta {
        &META
    }

    fn check(&self, file: &SourceFile) -> Vec<Diagnostic> {
        let toks = &file.tokens;
        let (hash_names, ordered_names) = collect_bindings(toks);
        if hash_names.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();

        for i in 0..toks.len() {
            // Method-call site: name . iter_method (
            if toks[i].kind == TokenKind::Ident
                && hash_names.contains(&toks[i].text)
                && toks.get(i + 1).is_some_and(|t| t.is_punct("."))
                && toks
                    .get(i + 2)
                    .is_some_and(|t| ITER_METHODS.iter().any(|m| t.is_ident(m)))
                && toks.get(i + 3).is_some_and(|t| t.is_punct("("))
            {
                // Skip if this is itself inside a `for` header — the
                // `for` handler below owns that case (its sink window is
                // the loop body, not the statement).
                if in_for_header(toks, i) {
                    continue;
                }
                // The sink window is the whole statement — including
                // what's *before* the site, so an annotated
                // `let ordered: BTreeMap<_, _> = m.iter()...` counts.
                let start = statement_start(toks, i);
                let end = statement_end(toks, i);
                if !window_has_sink(&toks[start..end], &ordered_names) {
                    out.push(finding(file, toks, i, i + 2));
                }
            }
            // `for` site: for .. in <expr contains hash name> { body }
            if toks[i].is_ident("for") {
                let Some(in_idx) = find_forward(toks, i, 24, "in") else {
                    continue;
                };
                let Some(body_open) = toks[in_idx..]
                    .iter()
                    .position(|t| t.is_punct("{"))
                    .map(|p| p + in_idx)
                else {
                    continue;
                };
                let header = &toks[in_idx + 1..body_open];
                let Some(name_off) = header
                    .iter()
                    .position(|t| t.kind == TokenKind::Ident && hash_names.contains(&t.text))
                else {
                    continue;
                };
                let name_idx = in_idx + 1 + name_off;
                let body_close = match_brace(toks, body_open);
                // Sink window: loop body plus three lines after it (a
                // `rows.sort()` right after the loop is the idiom).
                let after_line = toks.get(body_close).map(|t| t.line + 3).unwrap_or(0);
                let mut end = body_close;
                while end < toks.len() && toks[end].line <= after_line {
                    end += 1;
                }
                if !window_has_sink(&toks[body_open..end], &ordered_names) {
                    out.push(finding(file, toks, name_idx, name_idx));
                }
            }
        }
        out
    }
}

fn finding(file: &SourceFile, toks: &[Token], idx: usize, end_idx: usize) -> Diagnostic {
    Diagnostic::source(
        META.code,
        META.severity,
        span_at(file, toks, idx, end_idx),
        format!(
            "iteration over hash container `{}` in a result-producing crate",
            toks[idx].text
        ),
    )
    .with_note(
        "hash order is randomized per process; collect into a `BTreeMap`/`BTreeSet`, \
         sort before use, or reduce order-insensitively",
    )
}

/// Record names bound to hash containers and to ordered containers.
fn collect_bindings(toks: &[Token]) -> (Vec<String>, Vec<String>) {
    let mut hash = Vec::new();
    let mut ordered = Vec::new();
    for i in 0..toks.len() {
        let is_hash = toks[i].is_ident("HashMap") || toks[i].is_ident("HashSet");
        let is_ordered = toks[i].is_ident("BTreeMap")
            || toks[i].is_ident("BTreeSet")
            || toks[i].is_ident("BinaryHeap");
        if !is_hash && !is_ordered {
            continue;
        }
        if let Some(name) = binding_name(toks, i) {
            if is_hash && !hash.contains(&name) {
                hash.push(name);
            } else if is_ordered && !ordered.contains(&name) {
                ordered.push(name);
            }
        }
    }
    (hash, ordered)
}

/// Walk back from a container-type token to the name it is bound to:
/// `let [mut] NAME [: Type] = ...Container...;` or a struct field
/// `NAME : Container<...>`. Returns `None` for unbound uses (casts,
/// function signatures).
fn binding_name(toks: &[Token], type_idx: usize) -> Option<String> {
    // Struct-field / annotated-let form: NAME : [std :: collections ::] Container
    let mut j = type_idx;
    while j >= 2
        && (toks[j - 1].is_punct("::")
            || toks[j - 1].is_ident("std")
            || toks[j - 1].is_ident("collections"))
    {
        j -= 1;
    }
    if j >= 2 && toks[j - 1].is_punct(":") && toks[j - 2].kind == TokenKind::Ident {
        return Some(toks[j - 2].text.clone());
    }
    // Initializer form: let [mut] NAME = ... Container ... (same statement).
    let mut k = type_idx;
    let mut steps = 0;
    while k > 0 && steps < 40 {
        k -= 1;
        steps += 1;
        let t = &toks[k];
        if t.is_punct(";") || t.is_punct("{") || t.is_punct("}") {
            return None;
        }
        if t.is_ident("let") {
            let mut n = k + 1;
            if toks.get(n).is_some_and(|t| t.is_ident("mut")) {
                n += 1;
            }
            return toks
                .get(n)
                .filter(|t| t.kind == TokenKind::Ident)
                .map(|t| t.text.clone());
        }
    }
    None
}

/// Is the token at `idx` part of a `for .. in ..` header (between `in`
/// and the loop's opening brace)?
fn in_for_header(toks: &[Token], idx: usize) -> bool {
    let mut k = idx;
    let mut steps = 0;
    while k > 0 && steps < 24 {
        k -= 1;
        steps += 1;
        let t = &toks[k];
        if t.is_punct("{") || t.is_punct("}") || t.is_punct(";") {
            return false;
        }
        if t.is_ident("in") {
            // Confirm a `for` precedes the `in`.
            let mut m = k;
            let mut s2 = 0;
            while m > 0 && s2 < 24 {
                m -= 1;
                s2 += 1;
                if toks[m].is_ident("for") {
                    return true;
                }
                if toks[m].is_punct("{") || toks[m].is_punct(";") {
                    return false;
                }
            }
            return false;
        }
    }
    false
}

/// First index > `from` (within `limit` tokens) whose ident is `what`.
fn find_forward(toks: &[Token], from: usize, limit: usize, what: &str) -> Option<usize> {
    toks.iter()
        .enumerate()
        .skip(from + 1)
        .take(limit)
        .find(|(_, t)| t.is_ident(what))
        .map(|(i, _)| i)
}

/// Index of the first token of the statement containing `idx`: just
/// past the previous `;`, `{`, or `}`.
fn statement_start(toks: &[Token], idx: usize) -> usize {
    let mut k = idx;
    while k > 0 {
        let t = &toks[k - 1];
        if t.is_punct(";") || t.is_punct("{") || t.is_punct("}") {
            return k;
        }
        k -= 1;
    }
    0
}

/// Index just past the statement containing `idx`: the first `;` at
/// brace depth 0 relative to the start, or the enclosing block's end.
fn statement_end(toks: &[Token], idx: usize) -> usize {
    let mut depth = 0i32;
    for (off, t) in toks[idx..].iter().enumerate() {
        if t.is_punct("{") || t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            depth -= 1;
        } else if t.is_punct("}") {
            depth -= 1;
            if depth < 0 {
                return idx + off;
            }
        } else if t.is_punct(";") && depth <= 0 {
            return idx + off;
        }
    }
    toks.len()
}

/// Index of the `}` matching the `{` at `open`.
fn match_brace(toks: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (off, t) in toks[open..].iter().enumerate() {
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return open + off;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Does the window contain an order sink?
fn window_has_sink(window: &[Token], ordered_names: &[String]) -> bool {
    for (i, t) in window.iter().enumerate() {
        if t.kind == TokenKind::Ident {
            if t.text.starts_with("sort") || t.text == "sorted" {
                return true;
            }
            if t.text == "BTreeMap" || t.text == "BTreeSet" || t.text == "BinaryHeap" {
                return true;
            }
            if REDUCTIONS.contains(&t.text.as_str()) {
                return true;
            }
            if ordered_names.contains(&t.text) {
                return true;
            }
        }
        // `+=` accumulation: `+` immediately followed by `=`.
        if t.is_punct("+")
            && window
                .get(i + 1)
                .is_some_and(|n| n.is_punct("=") && n.line == t.line && n.col == t.col + 1)
        {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Diagnostic> {
        HashIter.check(&SourceFile::parse("x.rs", "analysis", src, false))
    }

    #[test]
    fn positive_for_loop_feeding_output() {
        let src = r#"
            fn f() {
                let mut counts: HashMap<String, usize> = HashMap::new();
                for (k, v) in counts.iter() {
                    writeln!(out, "{k},{v}");
                }
            }
        "#;
        let hits = lint(src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].message.contains("counts"));
    }

    #[test]
    fn positive_chain_collected_into_vec() {
        let src = r#"
            fn f() -> Vec<String> {
                let set: HashSet<String> = HashSet::new();
                set.iter().cloned().collect()
            }
        "#;
        assert_eq!(lint(src).len(), 1);
    }

    #[test]
    fn negative_sorted_after_loop() {
        let src = r#"
            fn f() {
                let mut counts: HashMap<String, usize> = HashMap::new();
                let mut rows = Vec::new();
                for (k, v) in counts.iter() {
                    rows.push((k.clone(), *v));
                }
                rows.sort();
            }
        "#;
        assert!(lint(src).is_empty());
    }

    #[test]
    fn negative_collect_into_btreemap() {
        let src = r#"
            fn f() {
                let counts: HashMap<String, usize> = HashMap::new();
                let ordered: BTreeMap<_, _> = counts.iter().collect();
            }
        "#;
        assert!(lint(src).is_empty());
    }

    #[test]
    fn negative_order_insensitive_reduction() {
        let src = r#"
            fn f() -> usize {
                let set = HashSet::new();
                set.iter().count()
            }
        "#;
        assert!(lint(src).is_empty());
    }

    #[test]
    fn negative_lookup_only_use() {
        let src = r#"
            fn f() {
                let by_key: HashMap<String, usize> = HashMap::new();
                let id = by_key.get("k").copied();
                by_key.len();
            }
        "#;
        assert!(lint(src).is_empty());
    }

    #[test]
    fn negative_btree_iteration_is_fine() {
        let src = r#"
            fn f() {
                let m: BTreeMap<String, usize> = BTreeMap::new();
                for (k, v) in m.iter() {
                    writeln!(out, "{k},{v}");
                }
            }
        "#;
        assert!(lint(src).is_empty());
    }

    #[test]
    fn positive_for_over_reference() {
        let src = r#"
            fn f() {
                let seen = HashSet::new();
                for k in &seen {
                    out.push(k.clone());
                }
            }
        "#;
        assert_eq!(lint(src).len(), 1);
    }

    #[test]
    fn negative_accumulation_in_loop() {
        let src = r#"
            fn f() -> usize {
                let m: HashMap<String, usize> = HashMap::new();
                let mut total = 0;
                for v in m.values() {
                    total += v;
                }
                total
            }
        "#;
        assert!(lint(src).is_empty());
    }
}
