//! Layer 2 — artifact checks (`WM02xx`).
//!
//! The same diagnostics core as the source lints, applied to *built*
//! artifacts: dependency trees, crawl databases, and experiment
//! configurations. The source lints forbid the code shapes that break
//! determinism; these checks prove the data shapes the pipeline emits
//! actually hold the invariants the analysis assumes.

use crate::diag::{Code, Diagnostic, Severity};
use wmtree::ExperimentConfig;
use wmtree_browser::BrowserConfig;
use wmtree_crawler::CrawlDb;
use wmtree_tree::DepTree;
use wmtree_webgen::UniverseConfig;

/// The paper's profile count (Table 1) and subpage cap (§3.1).
const PAPER_PROFILES: usize = 5;
const PAPER_SUBPAGE_CAP: usize = 25;

/// Catalog entry for an artifact check (drives `wmtree-lint rules` and
/// the DESIGN.md table).
pub const ARTIFACT_CHECKS: &[(&str, &str, &str)] = &[
    (
        "WM0201",
        "deptree-root",
        "a DepTree has exactly one root: node 0, no parent, depth 0",
    ),
    (
        "WM0202",
        "deptree-structure",
        "parents precede children (acyclic), depth(child)=depth(parent)+1, parent lists child",
    ),
    (
        "WM0203",
        "deptree-keys",
        "node keys are unique normalized URLs and the key index is consistent",
    ),
    (
        "WM0211",
        "crawldb-slots",
        "every page row has exactly n_profiles visit slots",
    ),
    (
        "WM0212",
        "crawldb-paper-profiles",
        "the database was built for the paper's five profiles (warning)",
    ),
    (
        "WM0213",
        "crawldb-referential",
        "site -> page -> visit integrity: page URL parses, belongs to its site, visits point back",
    ),
    (
        "WM0221",
        "config-probabilities",
        "every configured probability lies in [0, 1]",
    ),
    (
        "WM0222",
        "config-subpage-cap",
        "subpage caps do not exceed the paper's 25 pages per site",
    ),
    (
        "WM0231",
        "bundle-integrity",
        "record checksums, segment chains, and counts agree with the bundle manifest",
    ),
    (
        "WM0232",
        "bundle-references",
        "every visit record resolves: stored object, profile index in range",
    ),
    (
        "WM0233",
        "bundle-orphans",
        "no object is stored without a referencing visit record (warning)",
    ),
    (
        "WM0234",
        "bundle-incomplete",
        "the bundle records a finished crawl, not a resumable partial one (warning)",
    ),
    (
        "WM0235",
        "shards-coverage",
        "SHARDS.json rank ranges are disjoint, in order, and cover the whole universe",
    ),
    (
        "WM0236",
        "shards-dense-ids",
        "shard ids are dense (0..n, in rank order)",
    ),
    (
        "WM0237",
        "shards-bundle-hashes",
        "every recorded shard bundle content hash matches the archive on disk",
    ),
    (
        "WM0238",
        "shards-merged-sites",
        "the merged report's site count equals the sum of per-shard vetted site counts",
    ),
    (
        "WM0241",
        "jobs-dense-ids",
        "JOBS.json job ids are dense (0..n, in submission order) with unique bundle dirs",
    ),
    (
        "WM0242",
        "jobs-state-coherence",
        "job fields match the state: done => bundle hash, failed => error, queued => untouched",
    ),
    (
        "WM0243",
        "jobs-bundle-hashes",
        "every done job's bundle exists on disk and matches its recorded content hash",
    ),
    (
        "WM0244",
        "treecache-integrity",
        "cache segment checksums, chains, and record counts agree with CACHE.json",
    ),
    (
        "WM0245",
        "treecache-records",
        "every cache record decodes: well-formed hash key, valid tree / site payload",
    ),
    (
        "WM0246",
        "treecache-dense",
        "cache records are dense: no duplicate keys, no empty payloads",
    ),
];

/// Check a [`DepTree`]. `origin` names the artifact in diagnostics
/// (e.g. a file path or `"deptree"`).
pub fn check_dep_tree(tree: &DepTree, origin: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let nodes = tree.nodes();
    if nodes.is_empty() {
        out.push(Diagnostic::artifact(
            Code("WM0201"),
            Severity::Error,
            format!("{origin}:node[0]"),
            "tree has no nodes; even a failed visit has its page root",
        ));
        return out;
    }
    for (id, node) in nodes.iter().enumerate() {
        let at = format!("{origin}:node[{id}]");
        match node.parent {
            None => {
                if id != 0 {
                    out.push(Diagnostic::artifact(
                        Code("WM0201"),
                        Severity::Error,
                        at.clone(),
                        format!(
                            "node {id} (`{}`) has no parent but is not the root",
                            node.key
                        ),
                    ));
                }
                if node.depth != 0 {
                    out.push(Diagnostic::artifact(
                        Code("WM0202"),
                        Severity::Error,
                        at.clone(),
                        format!("root depth must be 0, found {}", node.depth),
                    ));
                }
            }
            Some(p) => {
                if p >= id {
                    // Arena order is the acyclicity proof: a parent
                    // introduced after its child could close a cycle.
                    out.push(Diagnostic::artifact(
                        Code("WM0202"),
                        Severity::Error,
                        at.clone(),
                        format!("parent {p} does not precede node {id} in the arena"),
                    ));
                    continue;
                }
                let parent = &nodes[p];
                if parent.depth + 1 != node.depth {
                    out.push(
                        Diagnostic::artifact(
                            Code("WM0202"),
                            Severity::Error,
                            at.clone(),
                            format!(
                                "depth({}) = {} but depth(parent {}) = {}",
                                id, node.depth, p, parent.depth
                            ),
                        )
                        .with_note("every edge must deepen by exactly one level"),
                    );
                }
                if !parent.children.contains(&id) {
                    out.push(Diagnostic::artifact(
                        Code("WM0202"),
                        Severity::Error,
                        at.clone(),
                        format!("parent {p} does not list {id} among its children"),
                    ));
                }
            }
        }
        // Key-index consistency doubles as uniqueness: duplicate keys
        // cannot both map back to their own id.
        if tree.find(&node.key) != Some(id) {
            out.push(
                Diagnostic::artifact(
                    Code("WM0203"),
                    Severity::Error,
                    at,
                    format!("key `{}` does not resolve back to node {id}", node.key),
                )
                .with_note("node keys must be unique normalized URLs (§3.2)"),
            );
        }
    }
    out
}

/// Check a [`CrawlDb`].
pub fn check_crawl_db(db: &CrawlDb, origin: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if db.n_profiles() != PAPER_PROFILES {
        out.push(
            Diagnostic::artifact(
                Code("WM0212"),
                Severity::Warning,
                format!("{origin}:n_profiles"),
                format!(
                    "database built for {} profiles; the paper's setup (Table 1) uses {}",
                    db.n_profiles(),
                    PAPER_PROFILES
                ),
            )
            .with_note("fine for ablations; the headline reproduction needs all five"),
        );
    }
    for page in db.pages() {
        let at = format!("{origin}:{}/{}", page.site, page.url);
        match db.profile_slot_count(page) {
            Some(n) if n == db.n_profiles() => {}
            Some(n) => out.push(Diagnostic::artifact(
                Code("WM0211"),
                Severity::Error,
                at.clone(),
                format!("page has {n} visit slots, expected {}", db.n_profiles()),
            )),
            None => unreachable!("pages() yields only recorded pages"),
        }
        // Referential integrity: the page URL must parse, belong to its
        // site, and every recorded visit must point back at the page.
        match wmtree_url::Url::parse(&page.url) {
            Err(e) => out.push(Diagnostic::artifact(
                Code("WM0213"),
                Severity::Error,
                at.clone(),
                format!("page URL does not parse: {e:?}"),
            )),
            Ok(url) => {
                if url.site() != page.site {
                    out.push(
                        Diagnostic::artifact(
                            Code("WM0213"),
                            Severity::Error,
                            at.clone(),
                            format!(
                                "page URL belongs to site `{}`, recorded under `{}`",
                                url.site(),
                                page.site
                            ),
                        )
                        .with_note("the site key must be the page URL's registrable domain"),
                    );
                }
                for profile in 0..db.n_profiles() {
                    if let Some(v) = db.visit_any(page, profile) {
                        if v.page_url.normalize_for_comparison() != url.normalize_for_comparison() {
                            out.push(Diagnostic::artifact(
                                Code("WM0213"),
                                Severity::Error,
                                format!("{at}:profile[{profile}]"),
                                format!(
                                    "visit records page URL `{}`, row is keyed `{}`",
                                    v.page_url.as_str(),
                                    page.url
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }
    out
}

/// Check a bundle directory (`WM023x`): runs the lenient full-archive
/// verification of `wmtree-bundle` — per-record checksums, segment
/// chains against the manifest, object-store content addresses and
/// referential integrity — and maps every defect to a diagnostic.
/// `Err` means the directory could not be scanned at all (no manifest,
/// unreadable files).
pub fn check_bundle(dir: &std::path::Path, origin: &str) -> Result<Vec<Diagnostic>, String> {
    let report = wmtree_bundle::verify_bundle(dir).map_err(|e| e.to_string())?;
    let mut out = Vec::new();
    for issue in &report.issues {
        match issue {
            wmtree_bundle::VerifyIssue::Corrupt {
                segment,
                line,
                offset,
                detail,
            } => out.push(
                Diagnostic::artifact(
                    Code("WM0231"),
                    Severity::Error,
                    format!("{origin}:{segment}:{line}"),
                    detail.clone(),
                )
                .with_note(format!("record starts at byte offset {offset}")),
            ),
            wmtree_bundle::VerifyIssue::ManifestMismatch { segment, detail } => {
                out.push(Diagnostic::artifact(
                    Code("WM0231"),
                    Severity::Error,
                    format!("{origin}:{segment}"),
                    format!("manifest disagreement: {detail}"),
                ));
            }
            wmtree_bundle::VerifyIssue::TrailingBytes { segment, bytes } => out.push(
                Diagnostic::artifact(
                    Code("WM0231"),
                    Severity::Warning,
                    format!("{origin}:{segment}"),
                    format!("{bytes} uncommitted byte(s) past the committed region"),
                )
                .with_note("crash leftovers; resuming the crawl truncates them"),
            ),
            wmtree_bundle::VerifyIssue::DanglingObject {
                segment,
                line,
                object,
            } => out.push(
                Diagnostic::artifact(
                    Code("WM0232"),
                    Severity::Error,
                    format!("{origin}:{segment}:{line}"),
                    format!("visit record references object {object}, which the store never recorded"),
                )
                .with_note("content-addressed objects must be appended before their first reference"),
            ),
            wmtree_bundle::VerifyIssue::ProfileOutOfRange {
                segment,
                line,
                profile,
            } => out.push(Diagnostic::artifact(
                Code("WM0232"),
                Severity::Error,
                format!("{origin}:{segment}:{line}"),
                format!("profile index {profile} out of range for the bundle's profile roster"),
            )),
            wmtree_bundle::VerifyIssue::OrphanObject { object } => out.push(
                Diagnostic::artifact(
                    Code("WM0233"),
                    Severity::Warning,
                    format!("{origin}:objects"),
                    format!("object {object} is stored but never referenced"),
                )
                .with_note("the writer only stores payloads on first reference; an orphan means tampering or a writer bug"),
            ),
            wmtree_bundle::VerifyIssue::Incomplete => out.push(
                Diagnostic::artifact(
                    Code("WM0234"),
                    Severity::Warning,
                    format!("{origin}:MANIFEST.json"),
                    "bundle is a resumable partial crawl (complete = false)",
                )
                .with_note("resume the crawl or expect analyses over a site prefix"),
            ),
        }
    }
    let cache_dir = dir.join(wmtree_tree::cache::CACHE_DIR_NAME);
    if cache_dir.is_dir() {
        out.extend(check_tree_cache(
            &cache_dir,
            &format!("{origin}:{}", wmtree_tree::cache::CACHE_DIR_NAME),
        )?);
    }
    Ok(out)
}

/// Check a tree/site cache directory (`WM0244`–`WM0246`), as written
/// next to a bundle by the incremental replay path (`TREECACHE/`).
/// Maps [`wmtree_tree::verify_cache`]'s read-only scan to diagnostics:
/// framing/chain/manifest defects (WM0244, uncommitted crash leftovers
/// are warnings), records whose hash key or payload does not decode
/// (WM0245), and duplicate or empty records (WM0246). `Err` means the
/// directory could not be scanned at all.
pub fn check_tree_cache(dir: &std::path::Path, origin: &str) -> Result<Vec<Diagnostic>, String> {
    let report = wmtree_tree::verify_cache(dir)?;
    let mut out = Vec::new();
    for issue in &report.issues {
        match issue {
            wmtree_tree::CacheVerifyIssue::Corrupt {
                segment,
                line,
                detail,
            } => out.push(
                Diagnostic::artifact(
                    Code("WM0244"),
                    Severity::Error,
                    format!("{origin}:{segment}:{line}"),
                    detail.clone(),
                )
                .with_note("a corrupt cache is discarded and rebuilt on the next open"),
            ),
            wmtree_tree::CacheVerifyIssue::TrailingBytes { segment, bytes } => out.push(
                Diagnostic::artifact(
                    Code("WM0244"),
                    Severity::Warning,
                    format!("{origin}:{segment}"),
                    format!("{bytes} uncommitted byte(s) past the committed region"),
                )
                .with_note("crash leftovers; the next cache open truncates them"),
            ),
            wmtree_tree::CacheVerifyIssue::BadRecord {
                segment,
                line,
                detail,
            } => out.push(
                Diagnostic::artifact(
                    Code("WM0245"),
                    Severity::Error,
                    format!("{origin}:{segment}:{line}"),
                    detail.clone(),
                )
                .with_note("cache records must decode to valid hash-keyed entries"),
            ),
            wmtree_tree::CacheVerifyIssue::Sparse {
                segment,
                line,
                detail,
            } => out.push(
                Diagnostic::artifact(
                    Code("WM0246"),
                    Severity::Error,
                    format!("{origin}:{segment}:{line}"),
                    detail.clone(),
                )
                .with_note("committed cache records must be dense: one distinct entry per line"),
            ),
        }
    }
    Ok(out)
}

/// Check a shard-plan directory (`WM0235`–`WM0238`): a `SHARDS.json`
/// manifest plus per-shard bundle directories. Verifies the partition
/// (disjoint, ordered rank ranges covering the universe; dense ids),
/// every recorded bundle content hash against the archive on disk,
/// and — when the directory holds a merged `report.json` — that the
/// merged report's vetted-site count equals the sum of the shards'.
/// `Err` means the directory could not be scanned at all (no plan,
/// unreadable files).
pub fn check_shard_dir(dir: &std::path::Path, origin: &str) -> Result<Vec<Diagnostic>, String> {
    let plan = wmtree_shard::ShardPlan::load(dir).map_err(|e| e.to_string())?;
    let at_plan = format!("{origin}:{}", wmtree_shard::SHARDS_FILE);
    let mut out = Vec::new();

    // WM0236 — dense ids in rank order.
    for (i, spec) in plan.shards.iter().enumerate() {
        if spec.id != i {
            out.push(Diagnostic::artifact(
                Code("WM0236"),
                Severity::Error,
                format!("{at_plan}:shard[{i}]"),
                format!(
                    "shard ids must be dense 0..{}, found id {}",
                    plan.shards.len(),
                    spec.id
                ),
            ));
        }
    }

    // WM0235 — windows partition the universe; rank ranges disjoint.
    if plan.shards.is_empty() {
        out.push(Diagnostic::artifact(
            Code("WM0235"),
            Severity::Error,
            at_plan.clone(),
            "plan has no shards",
        ));
    } else {
        let first = &plan.shards[0];
        let last = plan.shards.last().expect("non-empty"); // wmtree-lint: allow(WM0105)
        if first.site_lo != 0 {
            out.push(Diagnostic::artifact(
                Code("WM0235"),
                Severity::Error,
                format!("{at_plan}:shard[0]"),
                format!("first shard starts at site {}, not 0", first.site_lo),
            ));
        }
        if last.site_hi != plan.total_sites {
            out.push(Diagnostic::artifact(
                Code("WM0235"),
                Severity::Error,
                format!("{at_plan}:shard[{}]", plan.shards.len() - 1),
                format!(
                    "last shard ends at site {}, universe has {}",
                    last.site_hi, plan.total_sites
                ),
            ));
        }
        for (i, spec) in plan.shards.iter().enumerate() {
            if spec.site_lo >= spec.site_hi {
                out.push(Diagnostic::artifact(
                    Code("WM0235"),
                    Severity::Error,
                    format!("{at_plan}:shard[{i}]"),
                    format!("empty site window [{}, {})", spec.site_lo, spec.site_hi),
                ));
            }
            if spec.rank_lo > spec.rank_hi {
                out.push(Diagnostic::artifact(
                    Code("WM0235"),
                    Severity::Error,
                    format!("{at_plan}:shard[{i}]"),
                    format!("inverted rank range [{}, {}]", spec.rank_lo, spec.rank_hi),
                ));
            }
        }
        for (i, w) in plan.shards.windows(2).enumerate() {
            if w[0].site_hi != w[1].site_lo {
                out.push(Diagnostic::artifact(
                    Code("WM0235"),
                    Severity::Error,
                    format!("{at_plan}:shard[{}]", i + 1),
                    format!(
                        "site windows must be contiguous: shard {} ends at {}, shard {} starts at {}",
                        i, w[0].site_hi, i + 1, w[1].site_lo
                    ),
                ));
            }
            if w[0].rank_hi >= w[1].rank_lo {
                out.push(Diagnostic::artifact(
                    Code("WM0235"),
                    Severity::Error,
                    format!("{at_plan}:shard[{}]", i + 1),
                    format!(
                        "rank ranges overlap: shard {} ends at rank {}, shard {} starts at rank {}",
                        i,
                        w[0].rank_hi,
                        i + 1,
                        w[1].rank_lo
                    ),
                ));
            }
        }
    }

    // WM0237 — recorded bundle hashes verify against the archives.
    let mut shard_vetted_sites: Option<usize> = Some(0);
    for spec in &plan.shards {
        let at = format!("{at_plan}:shard[{}]", spec.id);
        let bundle_dir = dir.join(&spec.dir);
        let Some(recorded) = spec.bundle_hash.as_deref() else {
            out.push(
                Diagnostic::artifact(
                    Code("WM0237"),
                    Severity::Warning,
                    at,
                    format!("shard {} has no recorded bundle hash", spec.id),
                )
                .with_note("not yet crawled to completion; the plan cannot be merged"),
            );
            shard_vetted_sites = None;
            continue;
        };
        match wmtree_bundle::bundle_content_hash(&bundle_dir) {
            Ok(actual) if actual == recorded => match wmtree_crawler::read_bundle(&bundle_dir) {
                Ok(db) => {
                    if let Some(total) = shard_vetted_sites.as_mut() {
                        *total += db.vetted_sites().len();
                    }
                }
                Err(e) => {
                    out.push(Diagnostic::artifact(
                        Code("WM0237"),
                        Severity::Error,
                        format!("{origin}:{}", spec.dir),
                        format!("shard bundle does not replay: {e}"),
                    ));
                    shard_vetted_sites = None;
                }
            },
            Ok(actual) => {
                out.push(
                    Diagnostic::artifact(
                        Code("WM0237"),
                        Severity::Error,
                        format!("{origin}:{}", spec.dir),
                        format!("bundle content hash {actual} does not match recorded {recorded}"),
                    )
                    .with_note("the archive changed after its hash was recorded in SHARDS.json"),
                );
                shard_vetted_sites = None;
            }
            Err(e) => {
                out.push(Diagnostic::artifact(
                    Code("WM0237"),
                    Severity::Error,
                    format!("{origin}:{}", spec.dir),
                    format!("cannot hash shard bundle: {e}"),
                ));
                shard_vetted_sites = None;
            }
        }
        // Per-shard tree/site cache, written by the streaming merge.
        let cache_dir = bundle_dir.join(wmtree_tree::cache::CACHE_DIR_NAME);
        if cache_dir.is_dir() {
            out.extend(check_tree_cache(
                &cache_dir,
                &format!(
                    "{origin}:{}/{}",
                    spec.dir,
                    wmtree_tree::cache::CACHE_DIR_NAME
                ),
            )?);
        }
    }

    // WM0238 — merged report (if exported into the plan directory)
    // agrees with the sum of per-shard vetted site counts. Shards
    // partition the site space, so the per-shard counts are disjoint.
    let report_path = dir.join("report.json");
    if report_path.is_file() {
        let at = format!("{origin}:report.json");
        match std::fs::read_to_string(&report_path) {
            Ok(text) => match serde_json::from_str::<wmtree::report::Report>(&text) {
                Ok(report) => {
                    if let Some(total) = shard_vetted_sites {
                        if report.crawl.vetted_sites != total {
                            out.push(Diagnostic::artifact(
                                Code("WM0238"),
                                Severity::Error,
                                at,
                                format!(
                                    "merged report counts {} vetted sites, shards sum to {total}",
                                    report.crawl.vetted_sites
                                ),
                            ));
                        }
                    }
                }
                Err(e) => out.push(Diagnostic::artifact(
                    Code("WM0238"),
                    Severity::Error,
                    at,
                    format!("merged report does not parse: {e}"),
                )),
            },
            Err(e) => out.push(Diagnostic::artifact(
                Code("WM0238"),
                Severity::Error,
                at,
                format!("cannot read merged report: {e}"),
            )),
        }
    }

    Ok(out)
}

/// Check a job-store root (`WM0241`–`WM0243`): a `JOBS.json` queue
/// plus per-job bundle directories, as written by `wmtree-server`.
/// The file is parsed read-only — unlike `JobStore::open`, which
/// rewrites it for crash recovery, a lint must never mutate the
/// artifact it checks. `Err` means the store could not be scanned at
/// all (no queue file, unreadable, wrong version).
pub fn check_jobs_dir(dir: &std::path::Path, origin: &str) -> Result<Vec<Diagnostic>, String> {
    use wmtree_server::{JobState, JobsFile, JOBS_FILE, JOBS_VERSION};

    let path = dir.join(JOBS_FILE);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let file: JobsFile = serde_json::from_str(&text)
        .map_err(|e| format!("{} does not parse: {e}", path.display()))?;
    if file.version != JOBS_VERSION {
        return Err(format!(
            "{} has version {}, this build reads {JOBS_VERSION}",
            path.display(),
            file.version
        ));
    }
    let at_file = format!("{origin}:{JOBS_FILE}");
    let mut out = Vec::new();

    // WM0241 — dense ids in submission order, bundle dirs unique.
    let mut dirs_seen = std::collections::BTreeMap::new();
    for (i, job) in file.jobs.iter().enumerate() {
        let at = format!("{at_file}:job[{i}]");
        if job.id != i {
            out.push(Diagnostic::artifact(
                Code("WM0241"),
                Severity::Error,
                at.clone(),
                format!(
                    "job ids must be dense 0..{}, found id {}",
                    file.jobs.len(),
                    job.id
                ),
            ));
        }
        if let Some(&other) = dirs_seen.get(&job.dir) {
            out.push(
                Diagnostic::artifact(
                    Code("WM0241"),
                    Severity::Error,
                    at,
                    format!("bundle dir `{}` is shared with job {other}", job.dir),
                )
                .with_note("two jobs writing one archive corrupt each other's checkpoints"),
            );
        } else {
            dirs_seen.insert(job.dir.clone(), job.id);
        }
    }

    // WM0242 — field/state coherence.
    for job in &file.jobs {
        let at = format!("{at_file}:job[{}]", job.id);
        let state = job.state.label();
        match job.state {
            JobState::Done => {
                if job.bundle_hash.is_none() {
                    out.push(
                        Diagnostic::artifact(
                            Code("WM0242"),
                            Severity::Error,
                            at.clone(),
                            "done job has no recorded bundle hash",
                        )
                        .with_note("the hash is the ETag of everything served from the job"),
                    );
                }
                if job.sites_done != job.sites_total {
                    out.push(Diagnostic::artifact(
                        Code("WM0242"),
                        Severity::Error,
                        at.clone(),
                        format!(
                            "done job stopped at {}/{} sites",
                            job.sites_done, job.sites_total
                        ),
                    ));
                }
            }
            JobState::Failed => {
                if job.error.is_none() {
                    out.push(Diagnostic::artifact(
                        Code("WM0242"),
                        Severity::Error,
                        at.clone(),
                        "failed job records no error message",
                    ));
                }
            }
            JobState::Queued => {
                if job.bundle_hash.is_some() || job.sites_done != 0 {
                    out.push(Diagnostic::artifact(
                        Code("WM0242"),
                        Severity::Error,
                        at.clone(),
                        "queued job already records progress or a bundle hash",
                    ));
                }
            }
            JobState::Running | JobState::Interrupted => {}
        }
        if job.bundle_hash.is_some() && job.state != JobState::Done {
            out.push(Diagnostic::artifact(
                Code("WM0242"),
                Severity::Error,
                at.clone(),
                format!("{state} job records a bundle hash; only done jobs may"),
            ));
        }
        if job.sites_total > 0 && job.sites_done > job.sites_total {
            out.push(Diagnostic::artifact(
                Code("WM0242"),
                Severity::Error,
                at,
                format!(
                    "sites_done {} exceeds sites_total {}",
                    job.sites_done, job.sites_total
                ),
            ));
        }
    }

    // WM0243 — done jobs' bundles exist and verify against the hash.
    for job in &file.jobs {
        if job.state != JobState::Done {
            continue;
        }
        let Some(recorded) = job.bundle_hash.as_deref() else {
            continue; // already a WM0242
        };
        let at = format!("{origin}:{}", job.dir);
        let bundle_dir = dir.join(&job.dir);
        match wmtree_bundle::bundle_content_hash(&bundle_dir) {
            Ok(actual) if actual == recorded => {}
            Ok(actual) => out.push(
                Diagnostic::artifact(
                    Code("WM0243"),
                    Severity::Error,
                    at,
                    format!("bundle content hash {actual} does not match recorded {recorded}"),
                )
                .with_note("the archive changed after the job completed; replays would serve it under a stale ETag"),
            ),
            Err(e) => out.push(Diagnostic::artifact(
                Code("WM0243"),
                Severity::Error,
                at,
                format!("done job's bundle cannot be hashed: {e}"),
            )),
        }
        // Per-job tree/site cache, written by the cached replay path.
        let cache_dir = bundle_dir.join(wmtree_tree::cache::CACHE_DIR_NAME);
        if cache_dir.is_dir() {
            out.extend(check_tree_cache(
                &cache_dir,
                &format!(
                    "{origin}:{}/{}",
                    job.dir,
                    wmtree_tree::cache::CACHE_DIR_NAME
                ),
            )?);
        }
    }

    Ok(out)
}

/// Check one probability field.
fn check_prob(out: &mut Vec<Diagnostic>, origin: &str, name: &str, value: f64) {
    if !(0.0..=1.0).contains(&value) || value.is_nan() {
        out.push(Diagnostic::artifact(
            Code("WM0221"),
            Severity::Error,
            format!("{origin}:{name}"),
            format!("probability `{name}` = {value} is outside [0, 1]"),
        ));
    }
}

/// Check a [`BrowserConfig`].
pub fn check_browser_config(cfg: &BrowserConfig, origin: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    check_prob(
        &mut out,
        origin,
        "visit_failure_rate",
        cfg.visit_failure_rate,
    );
    check_prob(
        &mut out,
        origin,
        "network.failure_rate",
        cfg.network.failure_rate,
    );
    check_prob(
        &mut out,
        origin,
        "network.stall_rate",
        cfg.network.stall_rate,
    );
    out
}

/// Check a [`UniverseConfig`].
pub fn check_universe_config(cfg: &UniverseConfig, origin: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if cfg.max_subpages > PAPER_SUBPAGE_CAP {
        out.push(
            Diagnostic::artifact(
                Code("WM0222"),
                Severity::Error,
                format!("{origin}:max_subpages"),
                format!(
                    "max_subpages = {} exceeds the paper's cap of {PAPER_SUBPAGE_CAP} (§3.1)",
                    cfg.max_subpages
                ),
            )
            .with_note("the paper crawls at most 25 pages per site"),
        );
    }
    if cfg.sites_per_bucket.iter().all(|&n| n == 0) {
        out.push(Diagnostic::artifact(
            Code("WM0222"),
            Severity::Error,
            format!("{origin}:sites_per_bucket"),
            "universe has zero sites in every rank bucket",
        ));
    }
    out
}

/// Check a full [`ExperimentConfig`] (universe, profiles, caps).
pub fn check_experiment_config(cfg: &ExperimentConfig, origin: &str) -> Vec<Diagnostic> {
    let mut out = check_universe_config(&cfg.universe, origin);
    if cfg.max_pages_per_site == 0 || cfg.max_pages_per_site > PAPER_SUBPAGE_CAP {
        out.push(Diagnostic::artifact(
            Code("WM0222"),
            Severity::Error,
            format!("{origin}:max_pages_per_site"),
            format!(
                "max_pages_per_site = {} must be in 1..={PAPER_SUBPAGE_CAP}",
                cfg.max_pages_per_site
            ),
        ));
    }
    if cfg.profiles.len() != PAPER_PROFILES {
        out.push(Diagnostic::artifact(
            Code("WM0212"),
            Severity::Warning,
            format!("{origin}:profiles"),
            format!(
                "{} profiles configured; the paper's setup (Table 1) uses {PAPER_PROFILES}",
                cfg.profiles.len()
            ),
        ));
    }
    for (i, profile) in cfg.profiles.iter().enumerate() {
        let browser = if cfg.reliable {
            profile.reliable_browser_config()
        } else {
            profile.browser_config()
        };
        out.extend(check_browser_config(
            &browser,
            &format!("{origin}:profiles[{i}]({})", profile.name),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmtree::Scale;
    use wmtree_net::ResourceType;
    use wmtree_url::Party;

    fn good_tree() -> DepTree {
        let mut t = DepTree::new_rooted("https://www.a.com/".into());
        let s = t.attach(
            0,
            "https://cdn.a.com/app.js".into(),
            ResourceType::Script,
            Party::First,
            false,
        );
        t.attach(
            s,
            "https://ads.b.net/px.gif".into(),
            ResourceType::Image,
            Party::Third,
            true,
        );
        t
    }

    #[test]
    fn valid_tree_is_clean() {
        assert!(check_dep_tree(&good_tree(), "t").is_empty());
    }

    #[test]
    fn valid_db_is_clean() {
        let mut db = CrawlDb::new(5);
        let page = wmtree_crawler::PageKey {
            site: "a.com".into(),
            url: "https://www.a.com/page/1".into(),
        };
        let mut v = wmtree_browser::VisitResult::failed(
            wmtree_url::Url::parse("https://www.a.com/page/1").expect("test url"),
        );
        v.success = true;
        db.insert(page, 0, v);
        assert!(check_crawl_db(&db, "db").is_empty());
    }

    #[test]
    fn referential_violations_found() {
        let mut db = CrawlDb::new(2);
        // Page keyed under the wrong site.
        let page = wmtree_crawler::PageKey {
            site: "other.org".into(),
            url: "https://www.a.com/page/1".into(),
        };
        // ...and its visit points at a different page.
        let v = wmtree_browser::VisitResult::failed(
            wmtree_url::Url::parse("https://www.a.com/page/2").expect("test url"),
        );
        db.insert(page, 0, v);
        let diags = check_crawl_db(&db, "db");
        let codes: Vec<&str> = diags.iter().map(|d| d.code.as_str()).collect();
        assert!(codes.contains(&"WM0212"), "2-profile db warns: {codes:?}");
        assert!(codes.contains(&"WM0213"), "site mismatch: {codes:?}");
        assert_eq!(
            codes.iter().filter(|c| **c == "WM0213").count(),
            2,
            "{diags:?}"
        );
    }

    #[test]
    fn default_experiment_config_is_clean() {
        let cfg = ExperimentConfig::at_scale(Scale::Tiny);
        assert!(check_experiment_config(&cfg, "cfg").is_empty());
    }

    #[test]
    fn config_violations_found() {
        let mut cfg = ExperimentConfig::at_scale(Scale::Tiny);
        cfg.max_pages_per_site = 40;
        cfg.universe.max_subpages = 99;
        cfg.profiles.pop();
        let diags = check_experiment_config(&cfg, "cfg");
        let codes: Vec<&str> = diags.iter().map(|d| d.code.as_str()).collect();
        assert!(codes.contains(&"WM0222"));
        assert!(codes.contains(&"WM0212"));
        assert_eq!(codes.iter().filter(|c| **c == "WM0222").count(), 2);
    }

    #[test]
    fn bad_probability_found() {
        let b = BrowserConfig {
            visit_failure_rate: 1.5,
            ..BrowserConfig::default()
        };
        let diags = check_browser_config(&b, "b");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code.as_str(), "WM0221");
        assert!(diags[0].message.contains("visit_failure_rate"));
    }

    fn small_bundle(name: &str, finish: bool) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("wmtree-lint-bundle-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        let meta = wmtree_bundle::BundleMeta {
            n_profiles: 2,
            profiles: vec!["A".into(), "B".into()],
            experiment_seed: 7,
        };
        let mut w = wmtree_bundle::BundleWriter::create(&dir, meta).expect("create bundle");
        let mut v = wmtree_browser::VisitResult::failed(
            wmtree_url::Url::parse("https://www.a.com/").expect("test url"),
        );
        v.duration_ms = 1;
        w.append_site(
            "a.com",
            vec![
                ("https://www.a.com/".to_string(), 0, &v),
                ("https://www.a.com/".to_string(), 1, &v),
            ],
        )
        .expect("append site");
        if finish {
            w.finish().expect("finish bundle");
        } else {
            w.suspend().expect("suspend bundle");
        }
        dir
    }

    #[test]
    fn clean_bundle_passes() {
        let dir = small_bundle("clean", true);
        assert!(check_bundle(&dir, "b").expect("scan").is_empty());
    }

    #[test]
    fn partial_bundle_warns_incomplete() {
        let dir = small_bundle("partial", false);
        let diags = check_bundle(&dir, "b").expect("scan");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code.as_str(), "WM0234");
        assert_eq!(diags[0].severity, Severity::Warning);
    }

    #[test]
    fn corrupt_bundle_reports_wm0231_with_location() {
        let dir = small_bundle("corrupt", true);
        let seg = dir.join("visits-000.seg");
        let mut bytes = std::fs::read(&seg).expect("read segment");
        bytes[30] ^= 1;
        std::fs::write(&seg, &bytes).expect("write segment");
        let diags = check_bundle(&dir, "b").expect("scan");
        assert!(
            diags.iter().any(|d| d.code.as_str() == "WM0231"
                && d.location.display().contains("visits-000.seg:1")),
            "{diags:?}"
        );
    }

    #[test]
    fn tree_cache_defects_report_wm0244_to_wm0246() {
        // A bundle with a committed cache next to it: clean scan first.
        let dir = small_bundle("treecache", true);
        let cache_dir = dir.join(wmtree_tree::cache::CACHE_DIR_NAME);
        let cache = wmtree_tree::TreeCache::open(&cache_dir, 5);
        let mut tree = wmtree_tree::DepTree::new_rooted("https://www.a.com/".into());
        tree.attach(
            0,
            "https://cdn.a.com/app.js".into(),
            wmtree_net::ResourceType::Script,
            wmtree_url::Party::Third,
            false,
        );
        cache.insert_tree(3, &tree);
        cache.insert_site(9, "{\"opaque\":true}");
        cache.commit().expect("commit cache");
        assert!(check_bundle(&dir, "b").expect("scan").is_empty());

        // A flipped byte inside the committed cache region: WM0244,
        // naming the cache segment, through the bundle entry point.
        let seg = cache_dir.join("trees-000.seg");
        let committed = std::fs::read(&seg).expect("read cache segment");
        let mut bytes = committed.clone();
        bytes[20] ^= 1;
        std::fs::write(&seg, &bytes).expect("write cache segment");
        let diags = check_bundle(&dir, "b").expect("scan");
        assert!(
            diags
                .iter()
                .any(|d| d.code.as_str() == "WM0244" && d.location.display().contains("TREECACHE")),
            "{diags:?}"
        );
        std::fs::write(&seg, &committed).expect("restore cache segment");

        // A record that verifies but does not decode: WM0245. Forge a
        // sites segment whose payload is a malformed site record, with
        // correct line checksum and a re-pinned manifest.
        let manifest_path = cache_dir.join(wmtree_tree::cache::CACHE_MANIFEST_FILE);
        let manifest_text = std::fs::read_to_string(&manifest_path).expect("read cache manifest");
        let mut w = wmtree_bundle::segment::LogWriter::resume(
            &cache_dir,
            wmtree_tree::cache::SITES_PREFIX,
            wmtree_bundle::DEFAULT_SEGMENT_CAPACITY,
            serde_json::from_str::<wmtree_tree::cache::CacheManifest>(&manifest_text)
                .expect("parse cache manifest")
                .sites,
        );
        w.append("not-hex no-payload")
            .expect("append forged record");
        w.flush().expect("flush forged record");
        let mut manifest: wmtree_tree::cache::CacheManifest =
            serde_json::from_str(&manifest_text).expect("parse cache manifest");
        manifest.sites = w.metas().to_vec();
        std::fs::write(
            &manifest_path,
            format!(
                "{}\n",
                serde_json::to_string(&manifest).expect("serialize manifest")
            ),
        )
        .expect("write cache manifest");
        let diags = check_tree_cache(&cache_dir, "c").expect("scan");
        assert!(
            diags.iter().any(|d| d.code.as_str() == "WM0245"),
            "{diags:?}"
        );

        // A duplicate tree record: WM0246.
        let tree_line = String::from_utf8(committed.clone()).expect("utf8 segment");
        let payload = tree_line.lines().next().expect("one record")[17..].to_string();
        let mut w = wmtree_bundle::segment::LogWriter::resume(
            &cache_dir,
            wmtree_tree::cache::TREES_PREFIX,
            wmtree_bundle::DEFAULT_SEGMENT_CAPACITY,
            manifest.trees.clone(),
        );
        w.append(&payload).expect("append duplicate record");
        w.flush().expect("flush duplicate record");
        manifest.trees = w.metas().to_vec();
        std::fs::write(
            &manifest_path,
            format!(
                "{}\n",
                serde_json::to_string(&manifest).expect("serialize manifest")
            ),
        )
        .expect("write cache manifest");
        let diags = check_tree_cache(&cache_dir, "c").expect("scan");
        assert!(
            diags.iter().any(|d| d.code.as_str() == "WM0246"),
            "{diags:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dangling_reference_reports_wm0232() {
        let dir = small_bundle("dangling", true);
        // Hide the object store from the manifest: references dangle.
        let mut manifest = wmtree_bundle::Manifest::load(&dir).expect("load manifest");
        manifest.object_segments.clear();
        manifest.objects = 0;
        manifest.store(&dir).expect("store manifest");
        let diags = check_bundle(&dir, "b").expect("scan");
        assert!(
            diags.iter().any(|d| d.code.as_str() == "WM0232"),
            "{diags:?}"
        );
    }

    #[test]
    fn missing_manifest_is_a_scan_error() {
        let dir = std::env::temp_dir().join("wmtree-lint-bundle-nomanifest");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        assert!(check_bundle(&dir, "b").is_err());
    }

    #[test]
    fn shard_plan_violations_found() {
        use wmtree_shard::ShardPlan;
        let exp = wmtree::Experiment::new(ExperimentConfig::at_scale(Scale::Tiny));
        let dir = std::env::temp_dir().join("wmtree-lint-shards");
        let _ = std::fs::remove_dir_all(&dir);

        // A fresh, uncrawled plan: structurally clean, but every shard
        // warns that its bundle hash is missing (WM0237).
        let plan = ShardPlan::new(&exp, 3).expect("plan");
        plan.store(&dir).expect("store");
        let diags = check_shard_dir(&dir, "s").expect("scan");
        assert_eq!(diags.len(), 3, "{diags:?}");
        assert!(diags
            .iter()
            .all(|d| d.code.as_str() == "WM0237" && d.severity == Severity::Warning));

        // Break the partition: overlapping ranks, a gap in the site
        // windows, and a non-dense id.
        let mut bad = plan.clone();
        bad.shards[1].rank_lo = bad.shards[0].rank_hi;
        bad.shards[2].site_lo += 1;
        bad.shards[2].id = 9;
        bad.store(&dir).expect("store");
        let codes: Vec<&str> = check_shard_dir(&dir, "s")
            .expect("scan")
            .iter()
            .map(|d| d.code.as_str())
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        assert!(codes.contains(&"WM0235"), "{codes:?}");
        assert!(codes.contains(&"WM0236"), "{codes:?}");

        // Crawl shard 0 for real, then corrupt its recorded hash: the
        // mismatch is an error naming the shard's bundle directory.
        plan.store(&dir).expect("restore good plan");
        wmtree_shard::crawl_shard(&exp, &dir, 0, None).expect("crawl shard 0");
        let mut tampered = ShardPlan::load(&dir).expect("reload");
        tampered.shards[0].bundle_hash = Some("0000000000000000".into());
        tampered.store(&dir).expect("store tampered");
        let diags = check_shard_dir(&dir, "s").expect("scan");
        assert!(
            diags
                .iter()
                .any(|d| d.code.as_str() == "WM0237" && d.severity == Severity::Error),
            "{diags:?}"
        );

        // A merged report that disagrees with the shard sum (WM0238):
        // only meaningful once every shard is crawled. First restore
        // shard 0's true hash, undoing the tamper above.
        let hash0 = wmtree_bundle::bundle_content_hash(&dir.join("shard-000")).expect("hash");
        ShardPlan::record_bundle_hash(&dir, 0, hash0).expect("restore hash");
        wmtree_shard::crawl_shard(&exp, &dir, 1, None).expect("crawl shard 1");
        wmtree_shard::crawl_shard(&exp, &dir, 2, None).expect("crawl shard 2");
        let merged = wmtree_shard::merge_shards(&exp, &dir).expect("merge");
        let mut report = wmtree::Report::generate(&merged.results);
        assert!(check_shard_dir(&dir, "s").expect("scan").is_empty());
        report.crawl.vetted_sites += 1;
        std::fs::write(dir.join("report.json"), report.to_json()).expect("write report");
        let diags = check_shard_dir(&dir, "s").expect("scan");
        assert!(
            diags.iter().any(|d| d.code.as_str() == "WM0238"),
            "{diags:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn job_store_violations_found() {
        use wmtree_server::{JobRecord, JobSpec, JobState, JobsFile, JOBS_FILE, JOBS_VERSION};

        let dir = std::env::temp_dir().join("wmtree-lint-jobs");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");

        // One real finished bundle backs the done job.
        let bundle = small_bundle("jobs-backing", true);
        let job_dir = dir.join("job-000");
        std::fs::rename(&bundle, &job_dir).expect("move bundle into store");
        let hash = wmtree_bundle::bundle_content_hash(&job_dir).expect("hash");

        let job = |id: usize, state: JobState| JobRecord {
            id,
            spec: JobSpec {
                scale: "tiny".into(),
                seed: None,
                workers: None,
            },
            state,
            dir: format!("job-{id:03}"),
            sites_done: 0,
            sites_total: 0,
            bundle_hash: None,
            error: None,
        };
        let store = |jobs: Vec<JobRecord>| {
            let file = JobsFile {
                version: JOBS_VERSION,
                jobs,
            };
            std::fs::write(
                dir.join(JOBS_FILE),
                serde_json::to_string(&file).expect("serialize"),
            )
            .expect("write JOBS.json");
        };

        // Clean store: a done job backed by the real bundle, plus a
        // queued one.
        let mut done = job(0, JobState::Done);
        done.sites_done = 1;
        done.sites_total = 1;
        done.bundle_hash = Some(hash.clone());
        store(vec![done.clone(), job(1, JobState::Queued)]);
        assert!(check_jobs_dir(&dir, "j").expect("scan").is_empty());

        // Every coherence violation at once: non-dense id, duplicate
        // dir, done without hash, failed without error, queued with
        // progress, a hash on a non-terminal state, and a done job
        // whose recorded hash does not match the archive.
        let mut bad_done = done.clone();
        bad_done.bundle_hash = None;
        let mut dup = job(9, JobState::Failed); // non-dense id, no error
        dup.dir = "job-000".into();
        let mut eager = job(2, JobState::Queued);
        eager.sites_done = 3;
        let mut running = job(3, JobState::Running);
        running.bundle_hash = Some(hash.clone());
        running.sites_done = 5;
        running.sites_total = 2;
        let mut stale = job(4, JobState::Done);
        stale.bundle_hash = Some("0000000000000000".into());
        stale.dir = "job-000".into(); // points at the real archive...
        store(vec![bad_done, dup, eager, running, stale]);
        let diags = check_jobs_dir(&dir, "j").expect("scan");
        let codes: std::collections::BTreeSet<&str> =
            diags.iter().map(|d| d.code.as_str()).collect();
        assert!(codes.contains("WM0241"), "{diags:?}");
        assert!(codes.contains("WM0242"), "{diags:?}");
        assert!(codes.contains("WM0243"), "{diags:?}");
        // ...so WM0243 is specifically the hash mismatch, not a
        // missing archive.
        assert!(
            diags
                .iter()
                .any(|d| d.code.as_str() == "WM0243" && d.message.contains("does not match")),
            "{diags:?}"
        );

        // A done job whose bundle directory is gone entirely.
        let mut ghost = done.clone();
        ghost.dir = "job-777".into();
        ghost.id = 0;
        store(vec![ghost]);
        let diags = check_jobs_dir(&dir, "j").expect("scan");
        assert!(
            diags
                .iter()
                .any(|d| d.code.as_str() == "WM0243" && d.message.contains("cannot be hashed")),
            "{diags:?}"
        );

        // No JOBS.json at all is a scan error, not a finding.
        std::fs::remove_file(dir.join(JOBS_FILE)).expect("rm");
        assert!(check_jobs_dir(&dir, "j").is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn artifact_catalog_codes_unique() {
        let mut codes: Vec<&str> = ARTIFACT_CHECKS.iter().map(|(c, _, _)| *c).collect();
        let n = codes.len();
        codes.sort();
        codes.dedup();
        assert_eq!(codes.len(), n);
    }
}
