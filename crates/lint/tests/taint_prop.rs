//! Satellite property test: call-graph construction and the taint
//! fixpoint are insensitive to file/fn insertion order — any shuffle of
//! the per-file facts yields the identical findings set and the
//! identical graph.

use proptest::prelude::*;
use wmtree_lint::diag::sort_diagnostics;
use wmtree_lint::graph::{build_graph, FileFacts};
use wmtree_lint::lexer::SourceFile;
use wmtree_lint::render::render_json;
use wmtree_lint::taint;

/// A corpus exercising every code path: cross-crate flow, sanitizer,
/// zero-hop sink, duplicate keys (WM0307), a shadowed sanitizer
/// (WM0309), a stale allow (WM0310), and plain clean files.
fn corpus() -> Vec<FileFacts> {
    let files: [(&str, &str, &str); 8] = [
        (
            "crates/telemetry/src/clock.rs",
            "telemetry",
            "pub fn stamp() -> u64 { let t = SystemTime::now(); 0 }",
        ),
        (
            "crates/core/src/mid.rs",
            "core",
            "pub fn annotate() -> u64 { wmtree_telemetry::clock::stamp() }",
        ),
        (
            "crates/core/src/report.rs",
            "core",
            "pub fn write_report(rows: &[u64]) {\n    let tag = crate::mid::annotate();\n    \
             std::fs::write(\"r\", serde_json::to_string(rows));\n}",
        ),
        (
            "crates/core/src/sorted.rs",
            "core",
            "pub fn canonical(mut v: Vec<u64>) -> Vec<u64> {\n    \
             v.sort();\n    v\n}\npub fn dump(v: Vec<u64>) {\n    \
             let v = canonical(v);\n    std::fs::write(\"s\", serde_json::to_string(&v));\n}",
        ),
        (
            "crates/crawler/src/dup.rs",
            "crawler",
            "pub fn helper() -> u64 { let t = Instant::now(); 1 }",
        ),
        (
            // `dup/mod.rs` collapses to module `dup`, colliding with
            // `dup.rs` above — the WM0307 duplicate-key case.
            "crates/crawler/src/dup/mod.rs",
            "crawler",
            "pub fn helper() -> u64 { 2 }",
        ),
        (
            "crates/stats/src/shadow.rs",
            "stats",
            "pub fn stable_hash(seed: u64, bytes: &[u8]) -> u64 { seed }",
        ),
        (
            "crates/url/src/stale.rs",
            "url",
            "// wmtree-lint: allow(WM0302)\npub fn quiet() -> u64 { 9 }",
        ),
    ];
    files
        .iter()
        .map(|(path, krate, src)| FileFacts::collect(&SourceFile::parse(*path, *krate, src, false)))
        .collect()
}

/// Deterministic Fisher–Yates from a seed (xorshift64), so the shuffle
/// itself never consults a global RNG.
fn shuffle<T>(v: &mut [T], mut s: u64) {
    s |= 1;
    for i in (1..v.len()).rev() {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        let j = (s % (i as u64 + 1)) as usize;
        v.swap(i, j);
    }
}

/// Canonical signature of an analysis run: sorted findings as stable
/// JSON plus the suppression count.
fn signature(facts: &[FileFacts]) -> (String, usize) {
    let mut outcome = taint::analyze(facts);
    sort_diagnostics(&mut outcome.findings);
    (render_json(&outcome.findings), outcome.suppressed)
}

/// Canonical signature of the call graph: keys and resolved edges.
fn graph_signature(facts: &[FileFacts]) -> Vec<String> {
    let g = build_graph(facts);
    let mut out = Vec::new();
    for (n, key) in g.keys.iter().enumerate() {
        let callees: Vec<&str> = g.fwd[n].iter().map(|e| g.keys[e.callee].as_str()).collect();
        out.push(format!("{key} -> [{}]", callees.join(", ")));
    }
    out
}

#[test]
fn corpus_produces_the_expected_codes() {
    let facts = corpus();
    let (json, _suppressed) = signature(&facts);
    // The corpus must actually exercise the pass: a real flow, the
    // duplicate-key warning, the shadowed sanitizer, the stale allow —
    // and the sanitized path must NOT fire.
    for code in ["WM0301", "WM0307", "WM0309", "WM0310"] {
        let tag = format!("\"code\":\"{code}\"");
        assert!(json.contains(&tag), "corpus lost its {code} case:\n{json}");
    }
    assert!(
        !json.contains("\"code\":\"WM0302\""),
        "sanitized sort must not flag:\n{json}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any permutation of file order (and of fn order within files)
    /// yields byte-identical findings and an identical call graph.
    #[test]
    fn analysis_is_order_insensitive(seed in 0u64..1_000_000_000) {
        let baseline_facts = corpus();
        let baseline = signature(&baseline_facts);
        let baseline_graph = graph_signature(&baseline_facts);

        let mut shuffled = corpus();
        shuffle(&mut shuffled, seed);
        for (i, f) in shuffled.iter_mut().enumerate() {
            shuffle(&mut f.fns, seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9));
        }
        prop_assert_eq!(&signature(&shuffled), &baseline);
        prop_assert_eq!(&graph_signature(&shuffled), &baseline_graph);
    }
}
