//! The acceptance-criteria negative fixture: a `SystemTime::now()`
//! value flowing from an exempt crate through a call chain into a
//! report-writing function must be flagged with a rendered multi-hop
//! call path.
//!
//! The fixture is a real on-disk mini-workspace (temp dir), so the test
//! exercises discovery → lexing → symbol extraction → graph resolution
//! → taint propagation → rendering end to end, not just the taint API.

use std::path::PathBuf;
use wmtree_lint::render::render_pretty;
use wmtree_lint::{lint_workspace, Baseline, Location, Severity};

/// Write the three-crate fixture and return its root.
fn fixture_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("wmtree-lint-taint-fixture-{tag}"));
    let _ = std::fs::remove_dir_all(&root);
    for (rel, src) in [
        (
            "crates/telemetry/src/clock.rs",
            // The source: a wall-clock read in a crate WM0101 exempts.
            "pub fn stamp() -> u64 {\n    let t = SystemTime::now();\n    0\n}\n",
        ),
        (
            "crates/core/src/mid.rs",
            // The middle hop: cross-crate call into telemetry.
            "pub fn annotate() -> u64 {\n    wmtree_telemetry::clock::stamp()\n}\n",
        ),
        (
            "crates/core/src/report.rs",
            // The sink: serializes and writes, two hops from the clock.
            "pub fn write_report(rows: &[u64]) {\n    let tag = crate::mid::annotate();\n    \
             let body = serde_json::to_string(rows);\n    std::fs::write(\"report.json\", body);\n}\n",
        ),
    ] {
        let path = root.join(rel);
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        std::fs::write(&path, src).expect("write fixture");
    }
    root
}

#[test]
fn clock_flow_into_report_writer_is_flagged_with_path() {
    let root = fixture_root("flow");
    let outcome = lint_workspace(&root, &Baseline::empty()).expect("scan fixture");
    assert_eq!(outcome.files_scanned, 3);

    let flows: Vec<_> = outcome
        .findings
        .iter()
        .filter(|d| d.code.as_str() == "WM0301")
        .collect();
    assert_eq!(
        flows.len(),
        1,
        "expected exactly one WM0301 flow:\n{}",
        render_pretty(&outcome.findings)
    );
    let d = flows[0];
    assert_eq!(d.severity, Severity::Error);
    assert!(
        d.message.contains("core::report::write_report"),
        "{}",
        d.message
    );

    // Primary span: the call in the sink fn that starts the path.
    let Location::Source(span) = &d.location else {
        panic!("source location expected");
    };
    assert_eq!(span.file, "crates/core/src/report.rs");
    assert!(span.text.contains("annotate"), "{}", span.text);

    // The rendered path must be multi-hop: sink -> mid -> source.
    let path_note = d
        .notes
        .iter()
        .find(|n| n.starts_with("tainted call path:"))
        .expect("path note");
    assert_eq!(
        path_note,
        "tainted call path: core::report::write_report -> core::mid::annotate \
         -> telemetry::clock::stamp"
    );
    assert!(
        d.notes
            .iter()
            .any(|n| n.contains("source: wall-clock read `SystemTime::now`")),
        "{:?}",
        d.notes
    );
    assert!(
        d.notes
            .iter()
            .any(|n| n.contains("sink: `serde_json::to_string`")),
        "{:?}",
        d.notes
    );

    // The pretty renderer shows the whole chain as rustc-style notes.
    let text = render_pretty(&outcome.findings);
    assert!(text.contains("error[WM0301]"), "{text}");
    assert!(text.contains("= note: tainted call path:"), "{text}");

    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn allow_at_sink_call_suppresses_the_flow() {
    let root = fixture_root("allow");
    // Re-write the sink with a justified allow at the flagged call.
    std::fs::write(
        root.join("crates/core/src/report.rs"),
        "pub fn write_report(rows: &[u64]) {\n    \
         let tag = crate::mid::annotate(); // wmtree-lint: allow(WM0301)\n    \
         let body = serde_json::to_string(rows);\n    std::fs::write(\"report.json\", body);\n}\n",
    )
    .expect("rewrite sink");
    let outcome = lint_workspace(&root, &Baseline::empty()).expect("scan fixture");
    assert!(
        outcome.findings.iter().all(|d| d.code.as_str() != "WM0301"),
        "{}",
        render_pretty(&outcome.findings)
    );
    // The allow is *used*, so WM0310 must not fire either.
    assert!(
        outcome.findings.iter().all(|d| d.code.as_str() != "WM0310"),
        "{}",
        render_pretty(&outcome.findings)
    );
    assert!(outcome.suppressed >= 1);
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn stale_allow_is_flagged_unused() {
    let root = fixture_root("stale");
    // Break the chain (no more taint) but keep an allow behind.
    std::fs::write(
        root.join("crates/core/src/mid.rs"),
        "pub fn annotate() -> u64 {\n    7\n}\n",
    )
    .expect("rewrite mid");
    std::fs::write(
        root.join("crates/core/src/report.rs"),
        "pub fn write_report(rows: &[u64]) {\n    \
         let tag = crate::mid::annotate(); // wmtree-lint: allow(WM0301)\n    \
         let body = serde_json::to_string(rows);\n    std::fs::write(\"report.json\", body);\n}\n",
    )
    .expect("rewrite sink");
    let outcome = lint_workspace(&root, &Baseline::empty()).expect("scan fixture");
    let stale: Vec<_> = outcome
        .findings
        .iter()
        .filter(|d| d.code.as_str() == "WM0310")
        .collect();
    assert_eq!(
        stale.len(),
        1,
        "expected the stale allow flagged:\n{}",
        render_pretty(&outcome.findings)
    );
    assert_eq!(stale[0].severity, Severity::Warning);
    std::fs::remove_dir_all(&root).ok();
}
