//! End-to-end runs of the `wmtree-lint` binary.
//!
//! The satellite requirement behind these tests: `wmtree-lint --format
//! json` must be byte-identical across runs, so dashboards and CI can
//! diff its output without normalization.

use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_wmtree-lint"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("spawn wmtree-lint")
}

#[test]
fn lint_json_is_byte_identical_across_runs() {
    let a = run(&["lint", "--format", "json"]);
    let b = run(&["lint", "--format", "json"]);
    assert!(
        a.status.success(),
        "lint failed:\n{}{}",
        String::from_utf8_lossy(&a.stdout),
        String::from_utf8_lossy(&a.stderr)
    );
    assert_eq!(a.stdout, b.stdout, "JSON output must be byte-identical");

    let text = String::from_utf8(a.stdout).expect("utf8 output");
    assert!(text.starts_with("{\"version\":1,\"findings\":["), "{text}");
    assert!(text.ends_with('\n'));
    // The hand-built output must still be valid JSON.
    let v: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
    assert!(v.get("summary").is_some(), "{text}");
}

#[test]
fn lint_pretty_reports_clean_workspace() {
    let out = run(&["lint"]);
    assert!(out.status.success());
    // Pretty mode prints findings to stdout and the summary to stderr.
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("clean: no findings"), "{err}");
    assert!(err.contains("scanned"), "{err}");
}

#[test]
fn rules_subcommand_lists_all_three_layers() {
    let out = run(&["rules"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for code in ["WM0101", "WM0102", "WM0103", "WM0104", "WM0105"] {
        assert!(text.contains(code), "missing source lint {code}:\n{text}");
    }
    for code in ["WM0201", "WM0211", "WM0221"] {
        assert!(
            text.contains(code),
            "missing artifact check {code}:\n{text}"
        );
    }
    for code in [
        "WM0301", "WM0302", "WM0303", "WM0304", "WM0305", "WM0306", "WM0307", "WM0308", "WM0309",
        "WM0310",
    ] {
        assert!(text.contains(code), "missing taint rule {code}:\n{text}");
    }
    assert!(
        text.contains("determinism taint analysis"),
        "missing layer-3 header:\n{text}"
    );
}

#[test]
fn explain_describes_a_taint_rule() {
    let out = run(&["--explain", "WM0301"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("WM0301"), "{text}");
    // The taint explainer lists the source/sink/sanitizer model.
    for heading in ["sources", "sinks", "sanitizers"] {
        assert!(text.contains(heading), "missing {heading} section:\n{text}");
    }
}

#[test]
fn sarif_output_is_stable_and_valid() {
    let a = run(&["lint", "--format", "sarif", "--no-cache"]);
    let b = run(&["lint", "--format", "sarif", "--no-cache"]);
    assert!(a.status.success());
    assert_eq!(a.stdout, b.stdout, "SARIF output must be byte-identical");
    let text = String::from_utf8(a.stdout).expect("utf8 output");
    let v: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
    assert_eq!(
        v.get("version").and_then(|x| x.as_str()),
        Some("2.1.0"),
        "{text}"
    );
    let runs = match v.get("runs") {
        Some(serde_json::Value::Seq(runs)) => runs,
        other => panic!("runs array expected, got {other:?}"),
    };
    let rules = match runs
        .first()
        .and_then(|r| r.get("tool"))
        .and_then(|t| t.get("driver"))
        .and_then(|d| d.get("rules"))
    {
        Some(serde_json::Value::Seq(rules)) => rules,
        other => panic!("rules array expected, got {other:?}"),
    };
    let ids: Vec<&str> = rules
        .iter()
        .filter_map(|r| r.get("id").and_then(|i| i.as_str()))
        .collect();
    for code in ["WM0101", "WM0201", "WM0301", "WM0310"] {
        assert!(ids.contains(&code), "SARIF rules missing {code}: {ids:?}");
    }
}

#[test]
fn check_artifacts_accepts_known_good_tree() {
    use wmtree_net::ResourceType;
    use wmtree_url::Party;

    let mut t = wmtree_tree::DepTree::new_rooted("https://www.a.com/".into());
    let s = t.attach(
        0,
        "https://cdn.a.com/app.js".into(),
        ResourceType::Script,
        Party::First,
        false,
    );
    t.attach(
        s,
        "https://ads.b.net/px.gif".into(),
        ResourceType::Image,
        Party::Third,
        true,
    );
    let dir = std::env::temp_dir().join("wmtree-lint-artifact-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("tree.json");
    std::fs::write(&path, serde_json::to_string(&t).expect("serialize")).expect("write fixture");

    let out = run(&["check-artifacts", path.to_str().expect("utf8 path")]);
    assert!(
        out.status.success(),
        "stdout: {} stderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}
