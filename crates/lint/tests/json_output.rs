//! End-to-end runs of the `wmtree-lint` binary.
//!
//! The satellite requirement behind these tests: `wmtree-lint --format
//! json` must be byte-identical across runs, so dashboards and CI can
//! diff its output without normalization.

use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_wmtree-lint"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("spawn wmtree-lint")
}

#[test]
fn lint_json_is_byte_identical_across_runs() {
    let a = run(&["lint", "--format", "json"]);
    let b = run(&["lint", "--format", "json"]);
    assert!(
        a.status.success(),
        "lint failed:\n{}{}",
        String::from_utf8_lossy(&a.stdout),
        String::from_utf8_lossy(&a.stderr)
    );
    assert_eq!(a.stdout, b.stdout, "JSON output must be byte-identical");

    let text = String::from_utf8(a.stdout).expect("utf8 output");
    assert!(text.starts_with("{\"version\":1,\"findings\":["), "{text}");
    assert!(text.ends_with('\n'));
    // The hand-built output must still be valid JSON.
    let v: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
    assert!(v.get("summary").is_some(), "{text}");
}

#[test]
fn lint_pretty_reports_clean_workspace() {
    let out = run(&["lint"]);
    assert!(out.status.success());
    // Pretty mode prints findings to stdout and the summary to stderr.
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("clean: no findings"), "{err}");
    assert!(err.contains("scanned"), "{err}");
}

#[test]
fn rules_subcommand_lists_both_layers() {
    let out = run(&["rules"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for code in ["WM0101", "WM0102", "WM0103", "WM0104", "WM0105"] {
        assert!(text.contains(code), "missing source lint {code}:\n{text}");
    }
    for code in ["WM0201", "WM0211", "WM0221"] {
        assert!(
            text.contains(code),
            "missing artifact check {code}:\n{text}"
        );
    }
}

#[test]
fn check_artifacts_accepts_known_good_tree() {
    use wmtree_net::ResourceType;
    use wmtree_url::Party;

    let mut t = wmtree_tree::DepTree::new_rooted("https://www.a.com/".into());
    let s = t.attach(
        0,
        "https://cdn.a.com/app.js".into(),
        ResourceType::Script,
        Party::First,
        false,
    );
    t.attach(
        s,
        "https://ads.b.net/px.gif".into(),
        ResourceType::Image,
        Party::Third,
        true,
    );
    let dir = std::env::temp_dir().join("wmtree-lint-artifact-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("tree.json");
    std::fs::write(&path, serde_json::to_string(&t).expect("serialize")).expect("write fixture");

    let out = run(&["check-artifacts", path.to_str().expect("utf8 path")]);
    assert!(
        out.status.success(),
        "stdout: {} stderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}
