//! Satellite: incremental-cache correctness.
//!
//! A warm-cache run must match a cold run finding-for-finding, a single
//! edited file must invalidate only its own entry, and `--no-cache`
//! must bypass the cache entirely.

use std::path::{Path, PathBuf};
use wmtree_lint::engine::{lint_workspace_with, LintOptions, LintOutcome};
use wmtree_lint::render::render_json;
use wmtree_lint::Baseline;

/// A mini-workspace with one real (taint-producing) flow and a few
/// clean files, plus a cache path inside the same temp dir.
fn fixture(tag: &str) -> (PathBuf, PathBuf) {
    let root = std::env::temp_dir().join(format!("wmtree-lint-cache-fixture-{tag}"));
    let _ = std::fs::remove_dir_all(&root);
    for (rel, src) in [
        (
            "crates/telemetry/src/clock.rs",
            "pub fn stamp() -> u64 {\n    let t = SystemTime::now();\n    0\n}\n",
        ),
        (
            "crates/core/src/report.rs",
            "pub fn write_report(rows: &[u64]) {\n    \
             let tag = wmtree_telemetry::clock::stamp();\n    \
             let body = serde_json::to_string(rows);\n    std::fs::write(\"r.json\", body);\n}\n",
        ),
        (
            "crates/core/src/clean_a.rs",
            "pub fn double(x: u64) -> u64 {\n    x * 2\n}\n",
        ),
        (
            "crates/core/src/clean_b.rs",
            "pub fn triple(x: u64) -> u64 {\n    x * 3\n}\n",
        ),
    ] {
        let path = root.join(rel);
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        std::fs::write(&path, src).expect("write fixture");
    }
    let cache = root.join("lint-cache.json");
    (root, cache)
}

fn run(root: &Path, cache: &Path, use_cache: bool) -> LintOutcome {
    let options = LintOptions {
        workers: 1,
        use_cache,
        cache_path: Some(cache.to_path_buf()),
    };
    lint_workspace_with(root, &Baseline::empty(), &options).expect("scan fixture")
}

#[test]
fn warm_run_matches_cold_run_exactly() {
    let (root, cache) = fixture("warm");
    let cold = run(&root, &cache, true);
    assert_eq!(cold.cache_hits, 0);
    assert_eq!(cold.cache_misses, 4);
    assert!(
        cold.findings.iter().any(|d| d.code.as_str() == "WM0301"),
        "fixture must produce a flow"
    );

    let warm = run(&root, &cache, true);
    assert_eq!(warm.cache_hits, 4, "all files served from cache");
    assert_eq!(warm.cache_misses, 0);
    assert_eq!(
        render_json(&warm.findings),
        render_json(&cold.findings),
        "warm findings must be byte-identical to cold"
    );
    assert_eq!(warm.suppressed, cold.suppressed);
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn editing_one_file_invalidates_only_its_entry() {
    let (root, cache) = fixture("edit");
    run(&root, &cache, true);

    // Touch one clean file with a semantically neutral change.
    std::fs::write(
        root.join("crates/core/src/clean_a.rs"),
        "pub fn double(x: u64) -> u64 {\n    // doubled\n    x * 2\n}\n",
    )
    .expect("edit file");

    let after = run(&root, &cache, true);
    assert_eq!(after.cache_hits, 3, "three unchanged files stay cached");
    assert_eq!(after.cache_misses, 1, "only the edited file re-lints");
    assert!(
        after.findings.iter().any(|d| d.code.as_str() == "WM0301"),
        "the cross-file flow survives a partial cache refresh"
    );
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn edited_findings_update_through_the_cache() {
    let (root, cache) = fixture("update");
    let before = run(&root, &cache, true);
    assert!(before.findings.iter().any(|d| d.code.as_str() == "WM0301"));

    // Break the flow: the report no longer calls into telemetry.
    std::fs::write(
        root.join("crates/core/src/report.rs"),
        "pub fn write_report(rows: &[u64]) {\n    \
         let body = serde_json::to_string(rows);\n    std::fs::write(\"r.json\", body);\n}\n",
    )
    .expect("edit report");
    let after = run(&root, &cache, true);
    assert_eq!(after.cache_hits, 3);
    assert!(
        after.findings.iter().all(|d| d.code.as_str() != "WM0301"),
        "stale cached facts must not resurrect the flow"
    );
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn no_cache_bypasses_the_cache() {
    let (root, cache) = fixture("nocache");
    let a = run(&root, &cache, false);
    assert_eq!(a.cache_hits, 0);
    assert!(!cache.exists(), "no cache file may be written");
    let b = run(&root, &cache, false);
    assert_eq!(b.cache_hits, 0, "nothing is ever served from cache");
    assert_eq!(render_json(&a.findings), render_json(&b.findings));
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn corrupt_cache_degrades_to_cold_run() {
    let (root, cache) = fixture("corrupt");
    let cold = run(&root, &cache, true);
    std::fs::write(&cache, "{definitely not json").expect("corrupt cache");
    let recovered = run(&root, &cache, true);
    assert_eq!(recovered.cache_hits, 0, "corrupt cache must not hit");
    assert_eq!(
        render_json(&recovered.findings),
        render_json(&cold.findings)
    );
    // And the save repaired the file for the next run.
    let warm = run(&root, &cache, true);
    assert_eq!(warm.cache_hits, 4);
    std::fs::remove_dir_all(&root).ok();
}
