//! Tier-1 gate: the wmtree workspace passes its own determinism lints.
//!
//! This is the test that makes the lint rules *binding*: a new
//! `Instant::now()` or hash-order iteration anywhere in the pipeline
//! fails the suite, not just the (optional) CI lint job.

use std::path::{Path, PathBuf};
use wmtree_lint::render::render_pretty;
use wmtree_lint::{lint_workspace, Baseline};

/// The workspace root, two levels above this crate's manifest.
fn repo_root() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p
}

/// Load the checked-in baseline (an absent file means an empty one, the
/// same rule the binary applies).
fn load_baseline(root: &Path) -> Baseline {
    match std::fs::read_to_string(root.join("lint-baseline.txt")) {
        Ok(s) => Baseline::parse(&s),
        Err(_) => Baseline::empty(),
    }
}

#[test]
fn workspace_has_no_new_findings() {
    let root = repo_root();
    let baseline = load_baseline(&root);
    let outcome = lint_workspace(&root, &baseline).expect("scan workspace");
    assert!(
        outcome.files_scanned > 80,
        "scanned only {} files — target discovery is broken",
        outcome.files_scanned
    );
    assert!(
        outcome.findings.is_empty(),
        "wmtree-lint found {} non-baselined violation(s):\n{}",
        outcome.findings.len(),
        render_pretty(&outcome.findings)
    );
}

#[test]
fn scan_is_deterministic() {
    let root = repo_root();
    let baseline = load_baseline(&root);
    let a = lint_workspace(&root, &baseline).expect("first scan");
    let b = lint_workspace(&root, &baseline).expect("second scan");
    assert_eq!(a.files_scanned, b.files_scanned);
    assert_eq!(a.suppressed, b.suppressed);
    assert_eq!(a.baselined, b.baselined);
    assert_eq!(a.findings, b.findings);
}
