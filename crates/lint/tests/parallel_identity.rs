//! Satellite: `wmtree-lint lint --workers {1,2,8}` produces
//! byte-identical pretty and JSON output.
//!
//! The engine fans per-file work out over
//! `wmtree_analysis::par::par_map_min` with a slot-per-item merge, so
//! worker count must be invisible in the bytes — the same invariant the
//! lint itself enforces on the pipeline.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use wmtree_lint::engine::{lint_workspace_with, LintOptions};
use wmtree_lint::render::{render_json, render_pretty};
use wmtree_lint::Baseline;

/// The workspace root, two levels above this crate's manifest.
fn repo_root() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p
}

fn load_baseline(root: &Path) -> Baseline {
    match std::fs::read_to_string(root.join("lint-baseline.txt")) {
        Ok(s) => Baseline::parse(&s),
        Err(_) => Baseline::empty(),
    }
}

#[test]
fn worker_count_is_invisible_in_api_output() {
    let root = repo_root();
    let baseline = load_baseline(&root);
    let run = |workers: usize| {
        let options = LintOptions {
            workers,
            use_cache: false,
            cache_path: None,
        };
        let outcome = lint_workspace_with(&root, &baseline, &options).expect("scan");
        (
            render_pretty(&outcome.findings),
            render_json(&outcome.findings),
            outcome.files_scanned,
            outcome.suppressed,
        )
    };
    let base = run(1);
    for workers in [2usize, 8] {
        let got = run(workers);
        assert_eq!(got.0, base.0, "pretty output differs at workers={workers}");
        assert_eq!(got.1, base.1, "JSON output differs at workers={workers}");
        assert_eq!(got.2, base.2, "files_scanned differs at workers={workers}");
        assert_eq!(got.3, base.3, "suppressed differs at workers={workers}");
    }
}

fn run_bin(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_wmtree-lint"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("spawn wmtree-lint")
}

#[test]
fn worker_count_is_invisible_in_binary_output() {
    // --no-cache so the runs measure the fan-out path itself, not cache
    // replay; JSON and SARIF go to stdout, pretty findings too.
    for format in ["json", "sarif", "pretty"] {
        let base = run_bin(&["lint", "--no-cache", "--workers", "1", "--format", format]);
        assert!(
            base.status.success(),
            "workers=1 format={format} failed: {}",
            String::from_utf8_lossy(&base.stderr)
        );
        for workers in ["2", "8"] {
            let got = run_bin(&[
                "lint",
                "--no-cache",
                "--workers",
                workers,
                "--format",
                format,
            ]);
            assert!(got.status.success());
            assert_eq!(
                got.stdout, base.stdout,
                "stdout differs at workers={workers} format={format}"
            );
        }
    }
}
