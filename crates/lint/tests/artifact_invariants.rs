//! Layer-2 checks against real pipeline output and corrupted artifacts.
//!
//! The property test proves the positive direction: every tree the
//! pipeline builds — any seed, any site, either call-stack mode, with
//! or without URL normalization — satisfies the `WM020x` invariants.
//! The negative tests prove the checks can actually fail: a good tree
//! is serialized, surgically corrupted through the serde value tree,
//! and each corruption must surface as the right diagnostic code.

use proptest::prelude::*;
use serde::{Deserialize, Serialize, Value};
use wmtree_browser::{Browser, BrowserConfig};
use wmtree_filterlist::embedded::tracking_list;
use wmtree_lint::artifact::check_dep_tree;
use wmtree_net::ResourceType;
use wmtree_tree::{build_tree, CallStackMode, DepTree, TreeConfig};
use wmtree_url::Party;
use wmtree_webgen::{UniverseConfig, WebUniverse};

proptest! {
    /// `build_tree` output satisfies the layer-2 DepTree invariants for
    /// arbitrary seeds, pages, and tree configs.
    #[test]
    fn built_trees_satisfy_layer2_invariants(
        seed in 0u64..1_000_000,
        site in 0usize..16,
        page in 0usize..6,
        normalize in any::<bool>(),
        full_walk in any::<bool>(),
    ) {
        let u = WebUniverse::generate(UniverseConfig {
            seed,
            sites_per_bucket: [2, 1, 1, 1, 1],
            max_subpages: 4,
        });
        let sites = u.sites();
        let spec = &sites[site % sites.len()];
        let url = spec.page_url(page % (spec.n_subpages + 1));
        let visit = Browser::new(&u, BrowserConfig::reliable()).visit(&url, seed);
        let cfg = TreeConfig {
            normalize_urls: normalize,
            call_stack_mode: if full_walk {
                CallStackMode::FullWalk
            } else {
                CallStackMode::LatestEntry
            },
        };
        let tree = build_tree(&visit, Some(tracking_list()), &cfg);
        let diags = check_dep_tree(&tree, "prop");
        prop_assert!(diags.is_empty(), "layer-2 violations: {diags:?}");
        // The lint check must agree with the tree's own validator.
        prop_assert!(tree.check_invariants().is_ok());
    }
}

/// A small valid tree: root → script → tracking pixel.
fn good_tree() -> DepTree {
    let mut t = DepTree::new_rooted("https://www.a.com/".into());
    let s = t.attach(
        0,
        "https://cdn.a.com/app.js".into(),
        ResourceType::Script,
        Party::First,
        false,
    );
    t.attach(
        s,
        "https://ads.b.net/px.gif".into(),
        ResourceType::Image,
        Party::Third,
        true,
    );
    t
}

/// Serialize `tree`, apply `f` to the field map of node `node`, and
/// deserialize the corrupted result back into a `DepTree`.
fn corrupt_node<F>(tree: &DepTree, node: usize, f: F) -> DepTree
where
    F: FnOnce(&mut [(String, Value)]),
{
    let mut v = tree.serialize_value();
    {
        let Value::Map(fields) = &mut v else {
            panic!("tree serializes to a map")
        };
        let nodes = &mut fields
            .iter_mut()
            .find(|(k, _)| k == "nodes")
            .expect("nodes field")
            .1;
        let Value::Seq(items) = nodes else {
            panic!("nodes is a sequence")
        };
        let Value::Map(node_fields) = &mut items[node] else {
            panic!("node is a map")
        };
        f(node_fields);
    }
    Deserialize::deserialize_value(&v).expect("corrupted tree still deserializes")
}

/// Overwrite one named field of a node.
fn set_field(fields: &mut [(String, Value)], name: &str, value: Value) {
    fields
        .iter_mut()
        .find(|(k, _)| k == name)
        .unwrap_or_else(|| panic!("node has a `{name}` field"))
        .1 = value;
}

/// The diagnostic codes a check produced.
fn codes(tree: &DepTree) -> Vec<String> {
    check_dep_tree(tree, "t")
        .iter()
        .map(|d| d.code.as_str().to_string())
        .collect()
}

#[test]
fn valid_tree_is_clean() {
    assert!(codes(&good_tree()).is_empty());
}

#[test]
fn corrupted_depth_is_wm0202() {
    let bad = corrupt_node(&good_tree(), 2, |n| set_field(n, "depth", Value::U64(9)));
    let c = codes(&bad);
    assert!(c.contains(&"WM0202".to_string()), "{c:?}");
}

#[test]
fn corrupted_root_depth_is_wm0202() {
    let bad = corrupt_node(&good_tree(), 0, |n| set_field(n, "depth", Value::U64(3)));
    let c = codes(&bad);
    assert!(c.contains(&"WM0202".to_string()), "{c:?}");
}

#[test]
fn forward_parent_edge_is_wm0202() {
    // Node 1's parent points *forward* to node 2 — the shape that could
    // close a cycle. The arena-order rule must reject it.
    let bad = corrupt_node(&good_tree(), 1, |n| set_field(n, "parent", Value::U64(2)));
    let c = codes(&bad);
    assert!(c.contains(&"WM0202".to_string()), "{c:?}");
}

#[test]
fn orphaned_non_root_is_wm0201() {
    let bad = corrupt_node(&good_tree(), 2, |n| set_field(n, "parent", Value::Null));
    let c = codes(&bad);
    assert!(c.contains(&"WM0201".to_string()), "{c:?}");
}

#[test]
fn duplicate_key_is_wm0203() {
    // Node 2 claims the root's key; the key index can no longer resolve
    // it back to node 2.
    let bad = corrupt_node(&good_tree(), 2, |n| {
        set_field(n, "key", Value::Str("https://www.a.com/".into()))
    });
    let c = codes(&bad);
    assert!(c.contains(&"WM0203".to_string()), "{c:?}");
}
