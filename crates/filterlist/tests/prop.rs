//! Property tests for the filter-list matcher.

use proptest::prelude::*;
use wmtree_filterlist::{FilterList, RequestInfo};
use wmtree_net::ResourceType;
use wmtree_url::Url;

fn host() -> impl Strategy<Value = String> {
    (
        "[a-z]{2,8}",
        prop::sample::select(vec!["com", "net", "org", "io"]),
    )
        .prop_map(|(n, t)| format!("{n}.{t}"))
}

fn url_str() -> impl Strategy<Value = String> {
    (host(), prop::collection::vec("[a-z0-9]{1,8}", 0..3))
        .prop_map(|(h, segs)| format!("https://{h}/{}", segs.join("/")))
}

/// One filter line covering every anchor/bucket shape the index handles:
/// host-bucketable, open-ended host (general pool), interior-token and
/// edge-token substrings, start/end anchors, wildcards, exceptions, and
/// options.
fn rule_line() -> impl Strategy<Value = String> {
    (
        prop::sample::select((0usize..12).collect::<Vec<_>>()),
        host(),
        "[a-z]{3,9}",
        "[a-z]{2,6}",
    )
        .prop_map(|(shape, h, t, e)| match shape {
            0 => format!("||{h}^"),         // host-anchored, bucketable
            1 => format!("||{h}/{t}"),      // host anchor with path
            2 => format!("||{e}."),         // open-ended host → general pool
            3 => format!("/{t}/"),          // interior token
            4 => t,                         // edge token → general pool
            5 => format!("|https://{h}"),   // start anchor
            6 => format!(".{e}|"),          // end anchor
            7 => format!("{e}*{t}^"),       // wildcard + separator
            8 => format!("@@||{h}^"),       // exception, host bucket
            9 => format!("@@/{t}/"),        // exception, token bucket
            10 => format!("||{h}^$script"), // type option
            _ => format!("||{h}^$third-party"),
        })
}

proptest! {
    /// A host-anchor rule matches exactly the URLs whose host is the
    /// domain or a subdomain of it.
    #[test]
    fn host_anchor_semantics(domain in host(), other in url_str(), sub in "[a-z]{1,6}") {
        let list = FilterList::parse(&format!("||{domain}^"));
        let page = Url::parse("https://unrelated-page.example/").unwrap();
        let req = |u: &Url| list.is_tracking(&RequestInfo::new(u, &page, ResourceType::Image));

        let exact = Url::parse(&format!("https://{domain}/x")).unwrap();
        prop_assert!(req(&exact));
        let subdomain = Url::parse(&format!("https://{sub}.{domain}/x")).unwrap();
        prop_assert!(req(&subdomain));

        let other_url = Url::parse(&other).unwrap();
        let is_same_or_sub = other_url.host() == domain
            || other_url.host().ends_with(&format!(".{domain}"));
        if !is_same_or_sub {
            prop_assert!(!req(&other_url), "{} should not match ||{domain}^", other_url);
        }
    }

    /// Exceptions only ever remove matches, never add them.
    #[test]
    fn exceptions_are_monotone(domain in host(), path in "[a-z]{1,8}", target in url_str()) {
        let base = FilterList::parse(&format!("||{domain}^"));
        let with_exc = FilterList::parse(&format!("||{domain}^\n@@||{domain}/{path}^"));
        let page = Url::parse("https://page.example/").unwrap();
        let u = Url::parse(&target).unwrap();
        let req = RequestInfo::new(&u, &page, ResourceType::Script);
        if with_exc.is_tracking(&req) {
            prop_assert!(base.is_tracking(&req));
        }
    }

    /// Adding rules is monotone: a superset list matches a superset of
    /// requests (when no exceptions are added).
    #[test]
    fn adding_block_rules_is_monotone(
        d1 in host(),
        d2 in host(),
        target in url_str(),
    ) {
        let small = FilterList::parse(&format!("||{d1}^"));
        let big = FilterList::parse(&format!("||{d1}^\n||{d2}^"));
        let page = Url::parse("https://page.example/").unwrap();
        let u = Url::parse(&target).unwrap();
        let req = RequestInfo::new(&u, &page, ResourceType::Image);
        if small.is_tracking(&req) {
            prop_assert!(big.is_tracking(&req));
        }
    }

    /// A plain substring rule matches iff the (lowercased) URL contains
    /// the literal.
    #[test]
    fn plain_substring_rule(lit in "[a-z]{4,10}", target in url_str()) {
        let list = FilterList::parse(&format!("/{lit}/"));
        let page = Url::parse("https://page.example/").unwrap();
        let u = Url::parse(&target).unwrap();
        let matched = list.is_tracking(&RequestInfo::new(&u, &page, ResourceType::Image));
        let contains = u.as_str().to_ascii_lowercase().contains(&format!("/{lit}/"));
        prop_assert_eq!(matched, contains);
    }

    /// Parsing never panics on arbitrary printable input.
    #[test]
    fn parser_total(input in "[ -~\\n]{0,300}") {
        let _ = FilterList::parse(&input);
    }

    /// The candidate index is a pure accelerator: `is_tracking` (indexed,
    /// lowercase-once) agrees with the linear per-rule scan on arbitrary
    /// rule/URL pairs, across every anchor shape the syntax supports.
    #[test]
    fn index_agrees_with_linear_scan(
        rules in prop::collection::vec(rule_line(), 0..12),
        target in url_str(),
        page in url_str(),
        ty in prop::sample::select(vec![
            ResourceType::Script,
            ResourceType::Image,
            ResourceType::Xhr,
        ]),
    ) {
        let list = FilterList::parse(&rules.join("\n"));
        let u = Url::parse(&target).unwrap();
        let p = Url::parse(&page).unwrap();
        let req = RequestInfo::new(&u, &p, ty);
        prop_assert_eq!(list.is_tracking(&req), list.is_tracking_linear(&req));
        prop_assert_eq!(list.matches_block(&req), list.matches_block_linear(&req));
        prop_assert_eq!(
            list.matches_exception(&req),
            list.matches_exception_linear(&req)
        );
    }

    /// Type options restrict, never extend, matching.
    #[test]
    fn type_options_restrict(domain in host(), target in url_str()) {
        let untyped = FilterList::parse(&format!("||{domain}^"));
        let typed = FilterList::parse(&format!("||{domain}^$script"));
        let page = Url::parse("https://page.example/").unwrap();
        let u = Url::parse(&target).unwrap();
        for ty in [ResourceType::Script, ResourceType::Image, ResourceType::Font] {
            let req = RequestInfo::new(&u, &page, ty);
            if typed.is_tracking(&req) {
                prop_assert!(untyped.is_tracking(&req));
                prop_assert_eq!(ty, ResourceType::Script);
            }
        }
    }
}
