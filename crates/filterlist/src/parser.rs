//! Filter-list line parser: separates blocking rules, exceptions,
//! comments, and cosmetic rules, and parses the `$…` option tail.

use crate::matcher::Pattern;
use crate::rule::{FilterRule, RuleOptions, TypeMask};

/// Outcome of parsing a single list line.
#[derive(Debug, Clone, PartialEq)]
pub enum ParsedLine {
    /// A blocking network rule.
    Block(FilterRule),
    /// An `@@` exception rule.
    Exception(FilterRule),
    /// Comment, cosmetic rule, metadata, or malformed — ignored.
    Skipped,
}

/// Parse one line of an ABP-format list.
pub fn parse_line(line: &str) -> ParsedLine {
    let line = line.trim();
    // Empty / comments / [Adblock …] headers.
    if line.is_empty() || line.starts_with('!') || line.starts_with('[') {
        return ParsedLine::Skipped;
    }
    // Cosmetic rules: ##, #@#, #?# …
    if line.contains("##") || line.contains("#@#") || line.contains("#?#") {
        return ParsedLine::Skipped;
    }

    let (is_exception, body) = match line.strip_prefix("@@") {
        Some(rest) => (true, rest),
        None => (false, line),
    };

    // Split the options tail at the last '$' that is not part of the
    // pattern. Real EasyList patterns rarely contain '$'; the convention
    // is that options follow the last '$'.
    let (pattern_str, options) = match body.rfind('$') {
        Some(i) if i + 1 < body.len() && looks_like_options(&body[i + 1..]) => {
            match parse_options(&body[i + 1..]) {
                Some(opts) => (&body[..i], opts),
                None => return ParsedLine::Skipped, // unsupported critical option
            }
        }
        _ => (body, RuleOptions::default()),
    };

    if pattern_str.is_empty() {
        return ParsedLine::Skipped;
    }

    let rule = FilterRule::new(Pattern::compile(pattern_str), options);
    if is_exception {
        ParsedLine::Exception(rule)
    } else {
        ParsedLine::Block(rule)
    }
}

/// Heuristic: does this tail look like an option list rather than part of
/// a pattern (e.g. a URL with `$` in the path)?
fn looks_like_options(tail: &str) -> bool {
    tail.split(',').all(|opt| {
        let opt = opt.trim().trim_start_matches('~');
        let name = opt.split('=').next().unwrap_or("");
        !name.is_empty()
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
    })
}

/// Parse the comma-separated option list. Returns `None` when the rule
/// uses an option we cannot honor (so the rule must be skipped rather
/// than over-matched) — e.g. `$popup` or rewrite rules.
fn parse_options(tail: &str) -> Option<RuleOptions> {
    let mut opts = RuleOptions::default();
    let mut include_types: Option<TypeMask> = None;
    let mut exclude_types: Vec<wmtree_net::ResourceType> = Vec::new();

    for raw in tail.split(',') {
        let raw = raw.trim();
        let (negated, opt) = match raw.strip_prefix('~') {
            Some(rest) => (true, rest),
            None => (false, raw),
        };
        let (name, value) = match opt.find('=') {
            Some(i) => (&opt[..i], Some(&opt[i + 1..])),
            None => (opt, None),
        };
        match name.to_ascii_lowercase().as_str() {
            "third-party" | "3p" => opts.third_party = Some(!negated),
            "first-party" | "1p" => opts.third_party = Some(negated),
            "match-case" => opts.match_case = true,
            "domain" => {
                for d in value.unwrap_or("").split('|') {
                    let d = d.trim().to_ascii_lowercase();
                    if d.is_empty() {
                        continue;
                    }
                    match d.strip_prefix('~') {
                        Some(ex) => opts.exclude_domains.push(ex.to_string()),
                        None => opts.include_domains.push(d),
                    }
                }
            }
            other => {
                if let Some(ty) = TypeMask::from_option_name(other) {
                    if negated {
                        exclude_types.push(ty);
                    } else {
                        include_types = Some(match include_types {
                            Some(m) => m.with(ty),
                            None => TypeMask::only(ty),
                        });
                    }
                } else {
                    // Unknown/unsupported option (popup, rewrite, csp=…):
                    // skip the whole rule to stay conservative.
                    return None;
                }
            }
        }
    }

    opts.types = include_types.unwrap_or(TypeMask::ALL);
    for ty in exclude_types {
        // Excluding from ALL: clear the bit by building the complement.
        let bit = TypeMask::only(ty).0;
        opts.types = TypeMask(opts.types.0 & !bit);
    }
    Some(opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmtree_net::ResourceType;
    use wmtree_url::Url;

    fn block(line: &str) -> FilterRule {
        match parse_line(line) {
            ParsedLine::Block(r) => r,
            other => panic!("expected block rule, got {other:?}"),
        }
    }

    #[test]
    fn comments_and_headers_skipped() {
        assert_eq!(parse_line("! EasyList"), ParsedLine::Skipped);
        assert_eq!(parse_line("[Adblock Plus 2.0]"), ParsedLine::Skipped);
        assert_eq!(parse_line(""), ParsedLine::Skipped);
        assert_eq!(parse_line("   "), ParsedLine::Skipped);
    }

    #[test]
    fn cosmetic_skipped() {
        assert_eq!(parse_line("example.com##.ad"), ParsedLine::Skipped);
        assert_eq!(parse_line("##.banner"), ParsedLine::Skipped);
        assert_eq!(parse_line("example.com#@#.ok"), ParsedLine::Skipped);
    }

    #[test]
    fn exception_detected() {
        assert!(matches!(
            parse_line("@@||good.com^"),
            ParsedLine::Exception(_)
        ));
    }

    #[test]
    fn third_party_option() {
        let r = block("||t.com^$third-party");
        assert_eq!(r.options().third_party, Some(true));
        let r = block("||t.com^$~third-party");
        assert_eq!(r.options().third_party, Some(false));
    }

    #[test]
    fn type_options() {
        let r = block("||t.com^$script,image");
        assert!(r.options().types.includes(ResourceType::Script));
        assert!(r.options().types.includes(ResourceType::Image));
        assert!(!r.options().types.includes(ResourceType::Font));
    }

    #[test]
    fn negated_type_options() {
        let r = block("||t.com^$~script");
        assert!(!r.options().types.includes(ResourceType::Script));
        assert!(r.options().types.includes(ResourceType::Image));
    }

    #[test]
    fn domain_option() {
        let r = block("/px?$domain=a.com|~b.a.com");
        assert_eq!(r.options().include_domains, vec!["a.com"]);
        assert_eq!(r.options().exclude_domains, vec!["b.a.com"]);
    }

    #[test]
    fn unsupported_option_skips_rule() {
        assert_eq!(parse_line("||t.com^$popup"), ParsedLine::Skipped);
        assert_eq!(parse_line("||t.com^$csp=script-src"), ParsedLine::Skipped);
    }

    #[test]
    fn dollar_in_path_not_options() {
        // "$/" is not a valid option name → treated as part of the pattern.
        let r = parse_line("/path$/");
        assert!(matches!(r, ParsedLine::Block(_)));
    }

    #[test]
    fn full_rule_end_to_end() {
        let r = block("||metrics.example^$third-party,script");
        let page = Url::parse("https://site.com/").unwrap();
        let url = Url::parse("https://metrics.example/t.js").unwrap();
        let req = crate::RequestInfo::new(&url, &page, ResourceType::Script);
        assert!(r.matches(&req));
        // Same URL loaded first-party → no match.
        let own_page = Url::parse("https://metrics.example/").unwrap();
        let req2 = crate::RequestInfo::new(&url, &own_page, ResourceType::Script);
        assert!(!r.matches(&req2));
        // Wrong type → no match.
        let req3 = crate::RequestInfo::new(&url, &page, ResourceType::Image);
        assert!(!r.matches(&req3));
    }
}
