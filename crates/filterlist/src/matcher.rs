//! Pattern compilation and matching for ABP network filters.
//!
//! A pattern is compiled into a token sequence; matching is a
//! backtracking scan over the URL string. The special tokens are:
//!
//! * `*` — matches any (possibly empty) substring,
//! * `^` — a *separator*: any character that is not alphanumeric and not
//!   one of `_ - . %`, or the end of the URL,
//! * `|` at the start — anchor at the beginning of the URL,
//! * `|` at the end — anchor at the end of the URL,
//! * `||` at the start — anchor at a hostname label boundary.

use serde::{Deserialize, Serialize};

/// A compiled filter pattern.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pattern {
    anchor: Anchor,
    end_anchor: bool,
    tokens: Vec<Token>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum Anchor {
    /// Match anywhere in the URL.
    None,
    /// `|…` — match at the start of the URL.
    Start,
    /// `||…` — match at the start of a hostname label.
    Host,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Token {
    Literal(String),
    Wildcard,
    Separator,
}

/// Is `c` an ABP separator character?
fn is_separator(c: u8) -> bool {
    !(c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b'%'))
}

impl Pattern {
    /// Compile the pattern part of a rule (anchors and wildcards
    /// included, options already stripped). Patterns are stored
    /// lowercased; the caller lowercases the URL unless `$match-case`.
    pub fn compile(raw: &str) -> Pattern {
        let mut s = raw;
        let anchor = if let Some(rest) = s.strip_prefix("||") {
            s = rest;
            Anchor::Host
        } else if let Some(rest) = s.strip_prefix('|') {
            s = rest;
            Anchor::Start
        } else {
            Anchor::None
        };
        let end_anchor = if let Some(rest) = s.strip_suffix('|') {
            s = rest;
            true
        } else {
            false
        };

        let mut tokens = Vec::new();
        let mut lit = String::new();
        for ch in s.chars() {
            match ch {
                '*' => {
                    if !lit.is_empty() {
                        tokens.push(Token::Literal(std::mem::take(&mut lit)));
                    }
                    // Collapse consecutive wildcards.
                    if tokens.last() != Some(&Token::Wildcard) {
                        tokens.push(Token::Wildcard);
                    }
                }
                '^' => {
                    if !lit.is_empty() {
                        tokens.push(Token::Literal(std::mem::take(&mut lit)));
                    }
                    tokens.push(Token::Separator);
                }
                c => lit.extend(c.to_lowercase()),
            }
        }
        if !lit.is_empty() {
            tokens.push(Token::Literal(lit));
        }
        Pattern {
            anchor,
            end_anchor,
            tokens,
        }
    }

    /// Match the pattern against `url` (full URL string); `host` is the
    /// URL's hostname, needed for `||` anchoring.
    pub fn matches(&self, url: &str, host: &str) -> bool {
        let bytes = url.as_bytes();
        match self.anchor {
            Anchor::Start => self.match_at(bytes, 0),
            Anchor::Host => {
                // `||example.com` must match at the start of the host or
                // at a `.`-separated label boundary within the host.
                let Some(host_start) = url.find(host) else {
                    return false;
                };
                let host_end = host_start + host.len();
                let mut positions = vec![host_start];
                for (i, b) in url.as_bytes()[host_start..host_end].iter().enumerate() {
                    if *b == b'.' {
                        positions.push(host_start + i + 1);
                    }
                }
                positions.into_iter().any(|p| self.match_at(bytes, p))
            }
            Anchor::None => (0..=bytes.len()).any(|p| self.match_at(bytes, p)),
        }
    }

    /// Try to match the token list starting at byte offset `pos`.
    fn match_at(&self, url: &[u8], pos: usize) -> bool {
        self.match_tokens(url, pos, 0)
    }

    fn match_tokens(&self, url: &[u8], pos: usize, tok: usize) -> bool {
        if tok == self.tokens.len() {
            return !self.end_anchor || pos == url.len();
        }
        match &self.tokens[tok] {
            Token::Literal(lit) => {
                let lb = lit.as_bytes();
                if url.len() >= pos + lb.len() && &url[pos..pos + lb.len()] == lb {
                    self.match_tokens(url, pos + lb.len(), tok + 1)
                } else {
                    false
                }
            }
            Token::Separator => {
                if pos == url.len() {
                    // `^` matches the end of the URL — but only if it is
                    // the final token (an end anchor is then trivially
                    // satisfied because pos == len).
                    return tok + 1 == self.tokens.len();
                }
                if is_separator(url[pos]) {
                    self.match_tokens(url, pos + 1, tok + 1)
                } else {
                    false
                }
            }
            Token::Wildcard => {
                // Try every suffix (greedy is unnecessary; first match wins).
                (pos..=url.len()).any(|p| self.match_tokens(url, p, tok + 1))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pattern: &str, url: &str, host: &str) -> bool {
        Pattern::compile(pattern).matches(url, host)
    }

    #[test]
    fn plain_substring() {
        assert!(m("/banner/ads/", "https://x.com/banner/ads/1.png", "x.com"));
        assert!(!m("/banner/ads/", "https://x.com/content/1.png", "x.com"));
    }

    #[test]
    fn host_anchor_matches_domain_and_subdomains() {
        assert!(m("||tracker.com^", "https://tracker.com/px", "tracker.com"));
        assert!(m(
            "||tracker.com^",
            "https://cdn.tracker.com/px",
            "cdn.tracker.com"
        ));
        assert!(!m(
            "||tracker.com^",
            "https://nottracker.com/px",
            "nottracker.com"
        ));
        // Host anchor must not match inside the path.
        assert!(!m(
            "||tracker.com^",
            "https://safe.com/tracker.com/px",
            "safe.com"
        ));
    }

    #[test]
    fn host_anchor_separator_blocks_prefix_domains() {
        // ||ad.com^ should not match ad.company.com even though the string continues.
        assert!(!m(
            "||ad.com^",
            "https://ad.company.com/x",
            "ad.company.com"
        ));
        assert!(m("||ad.com^", "https://ad.com/x", "ad.com"));
        assert!(m("||ad.com^", "https://ad.com:8080/x", "ad.com"));
    }

    #[test]
    fn start_anchor() {
        assert!(m("|https://ads.", "https://ads.x.com/a", "ads.x.com"));
        assert!(!m(
            "|https://ads.",
            "http://x.com/?u=https://ads.y.com",
            "x.com"
        ));
    }

    #[test]
    fn end_anchor() {
        assert!(m(".swf|", "https://x.com/movie.swf", "x.com"));
        assert!(!m(".swf|", "https://x.com/movie.swf?x=1", "x.com"));
    }

    #[test]
    fn wildcard() {
        assert!(m(
            "/ads/*/banner",
            "https://x.com/ads/v2/banner.png",
            "x.com"
        ));
        assert!(m("/ads/*/banner", "https://x.com/ads//banner", "x.com"));
        assert!(!m("/ads/*/banner", "https://x.com/ads/banner0", "x.com"));
    }

    #[test]
    fn separator_semantics() {
        // ^ matches /, :, ?, &, = ... and end of URL, but not letters/digits/_-.%
        assert!(m("^px^", "https://x.com/px/", "x.com"));
        assert!(m("track^", "https://x.com/track?id=1", "x.com"));
        assert!(m("track^", "https://x.com/track", "x.com")); // end of URL
        assert!(!m("track^", "https://x.com/tracker", "x.com"));
        assert!(!m("track^", "https://x.com/track-me", "x.com")); // '-' is not a separator
    }

    #[test]
    fn case_insensitive_patterns() {
        assert!(m("/ADS/", "https://x.com/ads/a.png", "x.com"));
    }

    #[test]
    fn consecutive_wildcards_collapse() {
        let p = Pattern::compile("a**b");
        assert!(p.matches("https://x.com/a123b", "x.com"));
    }

    #[test]
    fn empty_pattern_matches_everything() {
        assert!(m("", "https://anything.com/", "anything.com"));
    }

    #[test]
    fn host_anchor_with_path() {
        assert!(m(
            "||stats.net/collect",
            "https://stats.net/collect?e=1",
            "stats.net"
        ));
        assert!(m(
            "||stats.net/collect",
            "https://eu.stats.net/collect",
            "eu.stats.net"
        ));
        assert!(!m(
            "||stats.net/collect",
            "https://stats.net/other",
            "stats.net"
        ));
    }
}
