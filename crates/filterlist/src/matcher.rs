//! Pattern compilation and matching for ABP network filters.
//!
//! A pattern is compiled into a token sequence; matching is a
//! backtracking scan over the URL string. The special tokens are:
//!
//! * `*` — matches any (possibly empty) substring,
//! * `^` — a *separator*: any character that is not alphanumeric and not
//!   one of `_ - . %`, or the end of the URL,
//! * `|` at the start — anchor at the beginning of the URL,
//! * `|` at the end — anchor at the end of the URL,
//! * `||` at the start — anchor at a hostname label boundary.

use serde::{Deserialize, Serialize};

/// A compiled filter pattern.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pattern {
    anchor: Anchor,
    end_anchor: bool,
    tokens: Vec<Token>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum Anchor {
    /// Match anywhere in the URL.
    None,
    /// `|…` — match at the start of the URL.
    Start,
    /// `||…` — match at the start of a hostname label.
    Host,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Token {
    Literal(String),
    Wildcard,
    Separator,
}

/// Is `c` an ABP separator character?
fn is_separator(c: u8) -> bool {
    !(c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.' | b'%'))
}

impl Pattern {
    /// Compile the pattern part of a rule (anchors and wildcards
    /// included, options already stripped). Patterns are stored
    /// lowercased; the caller lowercases the URL unless `$match-case`.
    pub fn compile(raw: &str) -> Pattern {
        let mut s = raw;
        let anchor = if let Some(rest) = s.strip_prefix("||") {
            s = rest;
            Anchor::Host
        } else if let Some(rest) = s.strip_prefix('|') {
            s = rest;
            Anchor::Start
        } else {
            Anchor::None
        };
        let end_anchor = if let Some(rest) = s.strip_suffix('|') {
            s = rest;
            true
        } else {
            false
        };

        let mut tokens = Vec::new();
        let mut lit = String::new();
        for ch in s.chars() {
            match ch {
                '*' => {
                    if !lit.is_empty() {
                        tokens.push(Token::Literal(std::mem::take(&mut lit)));
                    }
                    // Collapse consecutive wildcards.
                    if tokens.last() != Some(&Token::Wildcard) {
                        tokens.push(Token::Wildcard);
                    }
                }
                '^' => {
                    if !lit.is_empty() {
                        tokens.push(Token::Literal(std::mem::take(&mut lit)));
                    }
                    tokens.push(Token::Separator);
                }
                c => lit.extend(c.to_lowercase()),
            }
        }
        if !lit.is_empty() {
            tokens.push(Token::Literal(lit));
        }
        Pattern {
            anchor,
            end_anchor,
            tokens,
        }
    }

    /// Match the pattern against `url` (full URL string); `host` is the
    /// URL's hostname, needed for `||` anchoring.
    pub fn matches(&self, url: &str, host: &str) -> bool {
        let bytes = url.as_bytes();
        match self.anchor {
            Anchor::Start => self.match_at(bytes, 0),
            Anchor::Host => {
                // `||example.com` must match at the start of the host or
                // at a `.`-separated label boundary within the host.
                let Some(host_start) = url.find(host) else {
                    return false;
                };
                let host_end = host_start + host.len();
                if self.match_at(bytes, host_start) {
                    return true;
                }
                url.as_bytes()[host_start..host_end]
                    .iter()
                    .enumerate()
                    .filter(|(_, b)| **b == b'.')
                    .any(|(i, _)| self.match_at(bytes, host_start + i + 1))
            }
            Anchor::None => {
                // Quick reject: every literal of the pattern must appear
                // somewhere in the URL; one substring probe of the
                // longest literal is far cheaper than a positional scan.
                if let Some(lit) = self.longest_literal() {
                    if !url.contains(lit) {
                        return false;
                    }
                }
                (0..=bytes.len()).any(|p| self.match_at(bytes, p))
            }
        }
    }

    /// The longest literal token, if any — the pattern's best quick-reject
    /// and indexing handle.
    fn longest_literal(&self) -> Option<&str> {
        self.tokens
            .iter()
            .filter_map(|t| match t {
                Token::Literal(l) => Some(l.as_str()),
                _ => None,
            })
            .max_by_key(|l| l.len())
    }

    /// Host-bucket key for the rule index: `Some(hp)` when the pattern is
    /// `||`-anchored and can only match URLs whose host has `hp` as a
    /// full label-boundary suffix (e.g. `||tracker.com^` → `tracker.com`,
    /// matching `tracker.com` and `cdn.tracker.com` but never
    /// `nottracker.com`). Patterns whose host portion is open-ended
    /// (`||ad.` with no terminator) get `None` and stay in the
    /// always-checked pool.
    pub(crate) fn index_host(&self) -> Option<&str> {
        if self.anchor != Anchor::Host {
            return None;
        }
        let Some(Token::Literal(lit)) = self.tokens.first() else {
            return None;
        };
        // Longest prefix of characters that can appear in a hostname.
        let hp_len = lit
            .bytes()
            .take_while(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'-' | b'_' | b'%'))
            .count();
        if hp_len == 0 {
            return None;
        }
        if hp_len < lit.len() {
            // The literal continues with a character that cannot occur in
            // a host, so any match pins the host's end right after `hp`.
            return Some(&lit[..hp_len]);
        }
        // The whole literal is host-like; the host end is only pinned if
        // the next token is a separator (which excludes all host
        // characters) or the pattern is end-anchored here.
        match self.tokens.get(1) {
            Some(Token::Separator) => Some(lit.as_str()),
            None if self.end_anchor => Some(lit.as_str()),
            _ => None,
        }
    }

    /// Token-bucket key for the rule index: the longest alphanumeric run
    /// that is *interior* to one of the pattern's literals (non-alnum on
    /// both sides), and therefore guaranteed to appear as a complete
    /// alphanumeric run in every matching URL. Runs shorter than 3 bytes
    /// are too common to be selective and are skipped.
    pub(crate) fn index_token(&self) -> Option<&str> {
        let mut best: Option<&str> = None;
        for tok in &self.tokens {
            let Token::Literal(lit) = tok else { continue };
            let b = lit.as_bytes();
            let mut i = 0;
            while i < b.len() {
                if !b[i].is_ascii_alphanumeric() {
                    i += 1;
                    continue;
                }
                let start = i;
                while i < b.len() && b[i].is_ascii_alphanumeric() {
                    i += 1;
                }
                let bounded = start > 0 && i < b.len();
                if bounded && i - start >= 3 && best.is_none_or(|x| x.len() < i - start) {
                    best = Some(&lit[start..i]);
                }
            }
        }
        best
    }

    /// Try to match the token list starting at byte offset `pos`.
    ///
    /// Iterative scan with single-level wildcard backtracking: advancing
    /// the most recent `*`'s consumption is sufficient because every
    /// other token consumes a fixed amount, so recursion (which is
    /// O(n^k) for k wildcards and can overflow the stack on adversarial
    /// patterns) is unnecessary.
    fn match_at(&self, url: &[u8], pos: usize) -> bool {
        let toks = &self.tokens;
        let mut tok = 0usize;
        let mut p = pos;
        // (token index after the last wildcard, next position it will try)
        let mut retry: Option<(usize, usize)> = None;
        loop {
            let stepped = if tok == toks.len() {
                if !self.end_anchor || p == url.len() {
                    return true;
                }
                false
            } else {
                match &toks[tok] {
                    Token::Wildcard => {
                        retry = Some((tok + 1, p));
                        tok += 1;
                        true
                    }
                    Token::Literal(lit) => {
                        let lb = lit.as_bytes();
                        if url.len() >= p + lb.len() && &url[p..p + lb.len()] == lb {
                            p += lb.len();
                            tok += 1;
                            true
                        } else {
                            false
                        }
                    }
                    Token::Separator => {
                        if p == url.len() {
                            // `^` matches the end of the URL — but only
                            // if it is the final token (an end anchor is
                            // then trivially satisfied: pos == len).
                            if tok + 1 == toks.len() {
                                return true;
                            }
                            false
                        } else if is_separator(url[p]) {
                            p += 1;
                            tok += 1;
                            true
                        } else {
                            false
                        }
                    }
                }
            };
            if stepped {
                continue;
            }
            // Dead end: let the last wildcard swallow one more byte.
            match retry {
                Some((t, rp)) if rp < url.len() => {
                    retry = Some((t, rp + 1));
                    tok = t;
                    p = rp + 1;
                }
                _ => return false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pattern: &str, url: &str, host: &str) -> bool {
        Pattern::compile(pattern).matches(url, host)
    }

    #[test]
    fn plain_substring() {
        assert!(m("/banner/ads/", "https://x.com/banner/ads/1.png", "x.com"));
        assert!(!m("/banner/ads/", "https://x.com/content/1.png", "x.com"));
    }

    #[test]
    fn host_anchor_matches_domain_and_subdomains() {
        assert!(m("||tracker.com^", "https://tracker.com/px", "tracker.com"));
        assert!(m(
            "||tracker.com^",
            "https://cdn.tracker.com/px",
            "cdn.tracker.com"
        ));
        assert!(!m(
            "||tracker.com^",
            "https://nottracker.com/px",
            "nottracker.com"
        ));
        // Host anchor must not match inside the path.
        assert!(!m(
            "||tracker.com^",
            "https://safe.com/tracker.com/px",
            "safe.com"
        ));
    }

    #[test]
    fn host_anchor_separator_blocks_prefix_domains() {
        // ||ad.com^ should not match ad.company.com even though the string continues.
        assert!(!m(
            "||ad.com^",
            "https://ad.company.com/x",
            "ad.company.com"
        ));
        assert!(m("||ad.com^", "https://ad.com/x", "ad.com"));
        assert!(m("||ad.com^", "https://ad.com:8080/x", "ad.com"));
    }

    #[test]
    fn start_anchor() {
        assert!(m("|https://ads.", "https://ads.x.com/a", "ads.x.com"));
        assert!(!m(
            "|https://ads.",
            "http://x.com/?u=https://ads.y.com",
            "x.com"
        ));
    }

    #[test]
    fn end_anchor() {
        assert!(m(".swf|", "https://x.com/movie.swf", "x.com"));
        assert!(!m(".swf|", "https://x.com/movie.swf?x=1", "x.com"));
    }

    #[test]
    fn wildcard() {
        assert!(m(
            "/ads/*/banner",
            "https://x.com/ads/v2/banner.png",
            "x.com"
        ));
        assert!(m("/ads/*/banner", "https://x.com/ads//banner", "x.com"));
        assert!(!m("/ads/*/banner", "https://x.com/ads/banner0", "x.com"));
    }

    #[test]
    fn separator_semantics() {
        // ^ matches /, :, ?, &, = ... and end of URL, but not letters/digits/_-.%
        assert!(m("^px^", "https://x.com/px/", "x.com"));
        assert!(m("track^", "https://x.com/track?id=1", "x.com"));
        assert!(m("track^", "https://x.com/track", "x.com")); // end of URL
        assert!(!m("track^", "https://x.com/tracker", "x.com"));
        assert!(!m("track^", "https://x.com/track-me", "x.com")); // '-' is not a separator
    }

    #[test]
    fn case_insensitive_patterns() {
        assert!(m("/ADS/", "https://x.com/ads/a.png", "x.com"));
    }

    #[test]
    fn consecutive_wildcards_collapse() {
        let p = Pattern::compile("a**b");
        assert!(p.matches("https://x.com/a123b", "x.com"));
    }

    #[test]
    fn empty_pattern_matches_everything() {
        assert!(m("", "https://anything.com/", "anything.com"));
    }

    /// The original recursive matcher, kept verbatim as a test oracle
    /// for the iterative backtracking scan.
    fn match_tokens_recursive(p: &Pattern, url: &[u8], pos: usize, tok: usize) -> bool {
        if tok == p.tokens.len() {
            return !p.end_anchor || pos == url.len();
        }
        match &p.tokens[tok] {
            Token::Literal(lit) => {
                let lb = lit.as_bytes();
                if url.len() >= pos + lb.len() && &url[pos..pos + lb.len()] == lb {
                    match_tokens_recursive(p, url, pos + lb.len(), tok + 1)
                } else {
                    false
                }
            }
            Token::Separator => {
                if pos == url.len() {
                    return tok + 1 == p.tokens.len();
                }
                if is_separator(url[pos]) {
                    match_tokens_recursive(p, url, pos + 1, tok + 1)
                } else {
                    false
                }
            }
            Token::Wildcard => {
                (pos..=url.len()).any(|q| match_tokens_recursive(p, url, q, tok + 1))
            }
        }
    }

    proptest::proptest! {
        #[test]
        fn iterative_matches_recursive(
            pattern in "[a-z0-9/^*|.-]{0,12}",
            url in "[a-z0-9/:.?=&_-]{0,40}",
        ) {
            let p = Pattern::compile(&pattern);
            let bytes = url.as_bytes();
            for pos in 0..=bytes.len() {
                proptest::prop_assert_eq!(
                    p.match_at(bytes, pos),
                    match_tokens_recursive(&p, bytes, pos, 0),
                    "pattern {:?} url {:?} pos {}", pattern, url, pos
                );
            }
        }
    }

    #[test]
    fn index_host_keys() {
        let key = |p: &str| Pattern::compile(p).index_host().map(str::to_string);
        assert_eq!(key("||tracker.com^"), Some("tracker.com".into()));
        assert_eq!(key("||stats.net/collect"), Some("stats.net".into()));
        assert_eq!(key("||x.com|"), Some("x.com".into()));
        // Open-ended host portion: must stay in the general pool.
        assert_eq!(key("||ad."), None);
        assert_eq!(key("||tracker.com"), None);
        // Wildcard right after the host-like literal: end not pinned.
        assert_eq!(key("||track*er.com^"), None);
        // Not host-anchored.
        assert_eq!(key("/banner/ads/"), None);
        assert_eq!(key("|https://ads."), None);
    }

    #[test]
    fn index_token_picks_interior_runs() {
        let key = |p: &str| Pattern::compile(p).index_token().map(str::to_string);
        // "banner" and "ads" are interior (bounded by '/'): longest wins.
        assert_eq!(key("/banner/ads/"), Some("banner".into()));
        // Edge runs are not guaranteed complete in the URL.
        assert_eq!(key("track"), None);
        assert_eq!(key("/track"), None);
        assert_eq!(key("track/"), None);
        // Short interior runs are skipped.
        assert_eq!(key("/ad/"), None);
        // Wildcards split literals; only interior-of-literal runs count.
        assert_eq!(key("*/pixel/*"), Some("pixel".into()));
    }

    #[test]
    fn host_anchor_with_path() {
        assert!(m(
            "||stats.net/collect",
            "https://stats.net/collect?e=1",
            "stats.net"
        ));
        assert!(m(
            "||stats.net/collect",
            "https://eu.stats.net/collect",
            "eu.stats.net"
        ));
        assert!(!m(
            "||stats.net/collect",
            "https://stats.net/other",
            "stats.net"
        ));
    }
}
