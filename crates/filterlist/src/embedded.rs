//! The embedded tracking filter list used by the reproduction.
//!
//! This plays the role EasyList plays in the paper (§3.2): a
//! crowd-sourced-style list of network rules identifying tracking and
//! advertising requests. It covers the third-party ecosystem emitted by
//! `wmtree-webgen` (ad networks, analytics, cookie-sync endpoints) plus
//! the generic path patterns real-world lists carry, and exercises every
//! rule feature the parser supports (host anchors, options, exceptions).

use crate::FilterList;
use std::sync::OnceLock;

/// The raw list text (ABP format).
pub const TRACKING_LIST_TEXT: &str = r#"[Adblock Plus 2.0]
! Title: wmtree synthetic tracking list
! Modeled after EasyList (easylist.to); covers the wmtree-webgen universe.
!
! --- Ad networks -----------------------------------------------------
||syndicate-ads.net^$third-party
||adnexus-media.com^$third-party
||bidstream-x.com^
||rtb-exchange.net^
||popmedia-ads.com^$third-party
||bannerfarm.biz^
! --- Analytics & tracking --------------------------------------------
||metricsphere.com^$third-party
||pixel-trail.com^
||beacon-hub.io^
||usertrack-cdn.net^
||analytics-relay.com^$third-party
||statcounter-pro.net^$third-party
||sync-partners.net^
||fingerprint-lab.net^
! --- Social widgets (tracking endpoints only) ------------------------
||socialverse.com/plugins/track^
||socialverse.com/pixel^
||sharebar.net/count^
! --- Generic path patterns (the long tail of real lists) -------------
/adserve/*
/ads/banner/
/track/pixel^
/beacon?$~stylesheet
/collect?e=
-tracking-pixel.
/telemetry/v
/cookie-sync?
/rtb/bid?
/impression?cb=
! --- Generic patterns with type options ------------------------------
/analytics.js$script,third-party
/gtm.js$script
||tagrouter.com/route^$script
! --- Exceptions: infrastructure that would otherwise over-match ------
@@||cdn-fastedge.net/ads/fonts/$font
@@||metricsphere.com/docs^$~third-party
@@||streamvid-cdn.com/track/subtitles/$~script
"#;

/// The parsed embedded list (parsed once, cached).
pub fn tracking_list() -> &'static FilterList {
    static LIST: OnceLock<FilterList> = OnceLock::new();
    LIST.get_or_init(|| FilterList::parse(TRACKING_LIST_TEXT))
}

/// A stricter companion list in the spirit of EasyPrivacy: §6 of the
/// paper discusses combining lists ("could increase the
/// comprehensiveness of detecting trackers ... \[or\] result in a more
/// distorted measurement"). This list additionally flags analytics
/// libraries, consent telemetry, and CDN-hosted ad creatives that the
/// base list leaves alone.
pub const PRIVACY_LIST_TEXT: &str = r#"[Adblock Plus 2.0]
! Title: wmtree synthetic privacy list (EasyPrivacy analogue)
||jslibs-cdn.net/npm/analytics-shim.js$script
||staticfiles-cdn.com/creatives/
||consent-shield.com/consent-status^
||streamvid-cdn.com/track/
/collect/timing^
/px.gif?
||sharebar.net/count^
||socialverse.com/plugins/count^
"#;

/// The parsed privacy list.
pub fn privacy_list() -> &'static FilterList {
    static LIST: OnceLock<FilterList> = OnceLock::new();
    LIST.get_or_init(|| FilterList::parse(PRIVACY_LIST_TEXT))
}

/// The combination of both lists (a URL is tracking if either flags it
/// and no exception on either list clears it) — the §6 "multiple lists"
/// scenario.
pub fn combined_list() -> &'static FilterList {
    static LIST: OnceLock<FilterList> = OnceLock::new();
    LIST.get_or_init(|| {
        let mut text = String::from(TRACKING_LIST_TEXT);
        text.push('\n');
        text.push_str(PRIVACY_LIST_TEXT);
        FilterList::parse(&text)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RequestInfo;
    use wmtree_net::ResourceType;
    use wmtree_url::Url;

    fn page() -> Url {
        Url::parse("https://news.shop-a1.com/").unwrap()
    }

    fn tracking(url: &str, ty: ResourceType) -> bool {
        let u = Url::parse(url).unwrap();
        let p = page();
        tracking_list().is_tracking(&RequestInfo::new(&u, &p, ty))
    }

    #[test]
    fn parses_nontrivially() {
        let l = tracking_list();
        assert!(l.block_rule_count() >= 25, "got {}", l.block_rule_count());
        assert!(l.exception_rule_count() >= 2);
    }

    #[test]
    fn ad_networks_blocked() {
        assert!(tracking(
            "https://px.syndicate-ads.net/imp?id=1",
            ResourceType::Image
        ));
        assert!(tracking(
            "https://rtb-exchange.net/rtb/bid?x=2",
            ResourceType::Xhr
        ));
        assert!(tracking(
            "https://cdn.bidstream-x.com/lib.js",
            ResourceType::Script
        ));
    }

    #[test]
    fn analytics_blocked() {
        assert!(tracking(
            "https://metricsphere.com/collect?e=pv",
            ResourceType::Beacon
        ));
        assert!(tracking(
            "https://t.pixel-trail.com/track/pixel",
            ResourceType::Image
        ));
        assert!(tracking(
            "https://a.site.com/static/analytics.js",
            ResourceType::Script
        ));
    }

    #[test]
    fn generic_paths_blocked() {
        assert!(tracking(
            "https://anything.com/adserve/slot1",
            ResourceType::SubFrame
        ));
        assert!(tracking(
            "https://shop.com/img/x-tracking-pixel.gif",
            ResourceType::Image
        ));
        assert!(tracking("https://shop.com/telemetry/v2", ResourceType::Xhr));
    }

    #[test]
    fn first_party_analytics_not_blocked_by_3p_rule() {
        // metricsphere.com visited as the page itself → $third-party fails.
        let u = Url::parse("https://metricsphere.com/self.js").unwrap();
        let p = Url::parse("https://metricsphere.com/").unwrap();
        assert!(!tracking_list().is_tracking(&RequestInfo::new(&u, &p, ResourceType::Script)));
    }

    #[test]
    fn exceptions_win() {
        assert!(!tracking(
            "https://cdn-fastedge.net/ads/fonts/roboto.woff2",
            ResourceType::Font
        ));
        // Same path but as an image → the /ads/banner/-style generic
        // rules do not hit it, and the font exception is type-scoped.
        assert!(tracking(
            "https://x.com/ads/banner/1.png",
            ResourceType::Image
        ));
    }

    #[test]
    fn privacy_list_is_stricter() {
        let page = page();
        let creative = Url::parse("https://staticfiles-cdn.com/creatives/c1.jpg?id=5").unwrap();
        let req = RequestInfo::new(&creative, &page, ResourceType::Image);
        assert!(
            !tracking_list().is_tracking(&req),
            "base list leaves CDN creatives alone"
        );
        assert!(privacy_list().is_tracking(&req), "privacy list flags them");
        assert!(combined_list().is_tracking(&req));
        // Exceptions from the base list still apply in the combination.
        let font = Url::parse("https://cdn-fastedge.net/ads/fonts/x.woff2").unwrap();
        assert!(!combined_list().is_tracking(&RequestInfo::new(&font, &page, ResourceType::Font)));
    }

    #[test]
    fn benign_cdns_clean() {
        assert!(!tracking(
            "https://cdn-fastedge.net/lib/jquery.js",
            ResourceType::Script
        ));
        assert!(!tracking(
            "https://fontlibrary.org/inter.woff2",
            ResourceType::Font
        ));
        assert!(!tracking(
            "https://staticfiles-cdn.com/img/logo.png",
            ResourceType::Image
        ));
    }
}
