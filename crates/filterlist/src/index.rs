//! Candidate-rule index: host buckets, literal-token buckets, and an
//! always-checked general pool.
//!
//! [`FilterList::is_tracking`](crate::FilterList::is_tracking) is called
//! once per observed request while dependency trees are built — on a
//! full run that is millions of evaluations against every rule of the
//! list. The index prunes that product:
//!
//! * `||host^`-style rules land in a **host bucket** keyed by the exact
//!   label-boundary suffix they can match
//!   ([`Pattern::index_host`](crate::matcher::Pattern)); a request only
//!   probes the buckets of its host's label suffixes.
//! * other rules with a selective interior literal run land in a
//!   **token bucket** ([`Pattern::index_token`](crate::matcher::Pattern));
//!   a request only probes the buckets of the alphanumeric runs that
//!   actually occur in its URL.
//! * everything else stays in the **general pool**, checked every time.
//!
//! The index is a pure accelerator: a rule is bucketed only when its
//! key is *implied* by a match, so the candidate set always contains
//! every matching rule and `any(candidates) == any(all rules)`. The
//! property test in `tests/prop.rs` asserts exactly that against the
//! linear scan.

use crate::rule::{FilterRule, RequestInfo};
use std::collections::BTreeMap;

/// Buckets over one rule set (blocking or exception rules). Values are
/// indices into the rule vector.
#[derive(Debug, Clone, Default)]
pub(crate) struct RuleBuckets {
    /// Label-boundary host suffix → host-anchored rules pinned to it.
    host: BTreeMap<String, Vec<u32>>,
    /// Interior literal run → rules requiring that run in the URL.
    token: BTreeMap<String, Vec<u32>>,
    /// Rules with no usable key; always evaluated.
    general: Vec<u32>,
}

impl RuleBuckets {
    pub(crate) fn build(rules: &[FilterRule]) -> RuleBuckets {
        let mut b = RuleBuckets::default();
        for (i, rule) in rules.iter().enumerate() {
            let i = i as u32;
            let p = rule.pattern();
            if let Some(h) = p.index_host() {
                b.host.entry(h.to_string()).or_default().push(i);
            } else if let Some(t) = p.index_token() {
                b.token.entry(t.to_string()).or_default().push(i);
            } else {
                b.general.push(i);
            }
        }
        b
    }

    /// Does any rule in this bucket set match the request? `lower_url`
    /// and `lower_host` are the request's URL/host lowercased once by
    /// the caller (rules with `$match-case` ignore them).
    pub(crate) fn any_match(
        &self,
        rules: &[FilterRule],
        req: &RequestInfo<'_>,
        lower_url: &str,
        lower_host: &str,
    ) -> bool {
        let hit = |i: &u32| rules[*i as usize].matches_lowered(req, lower_url, lower_host);
        if self.general.iter().any(hit) {
            return true;
        }
        // Host buckets: every label-boundary suffix of the host.
        if !self.host.is_empty() {
            let mut start = 0usize;
            loop {
                if let Some(ids) = self.host.get(&lower_host[start..]) {
                    if ids.iter().any(hit) {
                        return true;
                    }
                }
                match lower_host[start..].find('.') {
                    Some(dot) => start += dot + 1,
                    None => break,
                }
            }
        }
        // Token buckets: every distinct alphanumeric run of the URL.
        if !self.token.is_empty() {
            let bytes = lower_url.as_bytes();
            let mut seen: Vec<&str> = Vec::new();
            let mut i = 0usize;
            while i < bytes.len() {
                if !bytes[i].is_ascii_alphanumeric() {
                    i += 1;
                    continue;
                }
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_alphanumeric() {
                    i += 1;
                }
                let run = &lower_url[start..i];
                if seen.contains(&run) {
                    continue;
                }
                seen.push(run);
                if let Some(ids) = self.token.get(run) {
                    if ids.iter().any(hit) {
                        return true;
                    }
                }
            }
        }
        false
    }
}

/// The full candidate index of a [`crate::FilterList`]: buckets for the
/// blocking rules and for the exception rules.
#[derive(Debug, Clone, Default)]
pub(crate) struct RuleIndex {
    pub(crate) block: RuleBuckets,
    pub(crate) except: RuleBuckets,
}

impl RuleIndex {
    pub(crate) fn build(block: &[FilterRule], except: &[FilterRule]) -> RuleIndex {
        RuleIndex {
            block: RuleBuckets::build(block),
            except: RuleBuckets::build(except),
        }
    }
}
