//! Adblock-Plus-syntax filter lists (EasyList-compatible subset).
//!
//! The IMC'23 paper identifies *tracking requests* by checking each
//! observed URL against EasyList (§3.2, "Identifying Tracking
//! Requests"). This crate implements the network-filter portion of the
//! Adblock Plus rule syntax that EasyList uses:
//!
//! * plain substring patterns: `/banner/ads/`
//! * host anchors: `||tracker.com^`
//! * start/end anchors: `|https://ads.` and `…swf|`
//! * wildcards `*` and the separator placeholder `^`
//! * exception rules `@@…`
//! * options: `$third-party`, `$~third-party`, resource-type options
//!   (`$script`, `$image`, `$subdocument`, …) and `$domain=a.com|~b.com`
//!
//! Cosmetic (element-hiding) rules and comments are recognized and
//! skipped, so feeding a full real-world EasyList file works.
//!
//! [`embedded::tracking_list`] ships the synthetic list used by the
//! reproduction: it covers the tracker/ad infrastructure emitted by
//! `wmtree-webgen` plus the generic path patterns real lists carry.
//!
//! # Example
//!
//! ```
//! use wmtree_filterlist::{FilterList, RequestInfo};
//! use wmtree_net::ResourceType;
//! use wmtree_url::Url;
//!
//! let list = FilterList::parse("||evil-tracker.com^\n@@||evil-tracker.com/legit.js$script");
//! let page = Url::parse("https://news.site.com/").unwrap();
//!
//! let px = Url::parse("https://cdn.evil-tracker.com/px.gif").unwrap();
//! assert!(list.is_tracking(&RequestInfo::new(&px, &page, ResourceType::Image)));
//!
//! let legit = Url::parse("https://evil-tracker.com/legit.js").unwrap();
//! assert!(!list.is_tracking(&RequestInfo::new(&legit, &page, ResourceType::Script)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod embedded;
mod matcher;
mod parser;
mod rule;

pub use parser::ParsedLine;
pub use rule::{FilterRule, RequestInfo, RuleOptions, TypeMask};

use serde::{Deserialize, Serialize};

/// A parsed filter list: blocking rules and exception rules.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FilterList {
    block: Vec<FilterRule>,
    except: Vec<FilterRule>,
}

impl FilterList {
    /// Parse a list from its text form. Unparsable and cosmetic lines
    /// are skipped (crowd-sourced lists always contain some).
    pub fn parse(text: &str) -> FilterList {
        let mut list = FilterList::default();
        for line in text.lines() {
            match parser::parse_line(line) {
                ParsedLine::Block(rule) => list.block.push(rule),
                ParsedLine::Exception(rule) => list.except.push(rule),
                ParsedLine::Skipped => {}
            }
        }
        list
    }

    /// Number of blocking rules.
    pub fn block_rule_count(&self) -> usize {
        self.block.len()
    }

    /// Number of exception rules.
    pub fn exception_rule_count(&self) -> usize {
        self.except.len()
    }

    /// Does any blocking rule match this request (ignoring exceptions)?
    pub fn matches_block(&self, req: &RequestInfo<'_>) -> bool {
        self.block.iter().any(|r| r.matches(req))
    }

    /// Does any exception rule match this request?
    pub fn matches_exception(&self, req: &RequestInfo<'_>) -> bool {
        self.except.iter().any(|r| r.matches(req))
    }

    /// The paper's tracking oracle: a URL is a tracking request when a
    /// blocking rule matches and no exception rule overrides it.
    pub fn is_tracking(&self, req: &RequestInfo<'_>) -> bool {
        self.matches_block(req) && !self.matches_exception(req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmtree_net::ResourceType;
    use wmtree_url::Url;

    fn req<'a>(url: &'a Url, page: &'a Url, ty: ResourceType) -> RequestInfo<'a> {
        RequestInfo::new(url, page, ty)
    }

    #[test]
    fn parse_counts_rules() {
        let list = FilterList::parse("! comment\n||a.com^\n@@||a.com/ok\n##.ad-banner\n\n/track/*");
        assert_eq!(list.block_rule_count(), 2);
        assert_eq!(list.exception_rule_count(), 1);
    }

    #[test]
    fn block_and_exception_interplay() {
        let list = FilterList::parse("||ads.example.com^\n@@||ads.example.com/whitelisted^");
        let page = Url::parse("https://site.com/").unwrap();
        let blocked = Url::parse("https://ads.example.com/banner.png").unwrap();
        let white = Url::parse("https://ads.example.com/whitelisted/x.png").unwrap();
        assert!(list.is_tracking(&req(&blocked, &page, ResourceType::Image)));
        assert!(!list.is_tracking(&req(&white, &page, ResourceType::Image)));
    }

    #[test]
    fn empty_list_matches_nothing() {
        let list = FilterList::parse("");
        let page = Url::parse("https://site.com/").unwrap();
        let u = Url::parse("https://tracker.com/px").unwrap();
        assert!(!list.is_tracking(&req(&u, &page, ResourceType::Image)));
    }
}
