//! Adblock-Plus-syntax filter lists (EasyList-compatible subset).
//!
//! The IMC'23 paper identifies *tracking requests* by checking each
//! observed URL against EasyList (§3.2, "Identifying Tracking
//! Requests"). This crate implements the network-filter portion of the
//! Adblock Plus rule syntax that EasyList uses:
//!
//! * plain substring patterns: `/banner/ads/`
//! * host anchors: `||tracker.com^`
//! * start/end anchors: `|https://ads.` and `…swf|`
//! * wildcards `*` and the separator placeholder `^`
//! * exception rules `@@…`
//! * options: `$third-party`, `$~third-party`, resource-type options
//!   (`$script`, `$image`, `$subdocument`, …) and `$domain=a.com|~b.com`
//!
//! Cosmetic (element-hiding) rules and comments are recognized and
//! skipped, so feeding a full real-world EasyList file works.
//!
//! [`embedded::tracking_list`] ships the synthetic list used by the
//! reproduction: it covers the tracker/ad infrastructure emitted by
//! `wmtree-webgen` plus the generic path patterns real lists carry.
//!
//! # Example
//!
//! ```
//! use wmtree_filterlist::{FilterList, RequestInfo};
//! use wmtree_net::ResourceType;
//! use wmtree_url::Url;
//!
//! let list = FilterList::parse("||evil-tracker.com^\n@@||evil-tracker.com/legit.js$script");
//! let page = Url::parse("https://news.site.com/").unwrap();
//!
//! let px = Url::parse("https://cdn.evil-tracker.com/px.gif").unwrap();
//! assert!(list.is_tracking(&RequestInfo::new(&px, &page, ResourceType::Image)));
//!
//! let legit = Url::parse("https://evil-tracker.com/legit.js").unwrap();
//! assert!(!list.is_tracking(&RequestInfo::new(&legit, &page, ResourceType::Script)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod embedded;
mod index;
mod matcher;
mod parser;
mod rule;

pub use parser::ParsedLine;
pub use rule::{FilterRule, RequestInfo, RuleOptions, TypeMask};

use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// A parsed filter list: blocking rules and exception rules.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FilterList {
    block: Vec<FilterRule>,
    except: Vec<FilterRule>,
    /// Candidate index, built lazily on first match. Never serialized:
    /// it is derived state and must not influence the list's identity.
    #[serde(skip)]
    index: OnceLock<index::RuleIndex>,
}

impl FilterList {
    /// Parse a list from its text form. Unparsable and cosmetic lines
    /// are skipped (crowd-sourced lists always contain some).
    pub fn parse(text: &str) -> FilterList {
        let mut list = FilterList::default();
        for line in text.lines() {
            match parser::parse_line(line) {
                ParsedLine::Block(rule) => list.block.push(rule),
                ParsedLine::Exception(rule) => list.except.push(rule),
                ParsedLine::Skipped => {}
            }
        }
        list
    }

    /// Number of blocking rules.
    pub fn block_rule_count(&self) -> usize {
        self.block.len()
    }

    /// Number of exception rules.
    pub fn exception_rule_count(&self) -> usize {
        self.except.len()
    }

    fn index(&self) -> &index::RuleIndex {
        self.index
            .get_or_init(|| index::RuleIndex::build(&self.block, &self.except))
    }

    /// Does any blocking rule match this request (ignoring exceptions)?
    ///
    /// Uses the candidate index: only rules whose host/token bucket the
    /// request can satisfy are evaluated. Equivalent to
    /// [`FilterList::matches_block_linear`] by construction (and by the
    /// property tests in `tests/prop.rs`).
    pub fn matches_block(&self, req: &RequestInfo<'_>) -> bool {
        let lower_url = lowered_url(req);
        let lower_host = lowered_host(req);
        self.index()
            .block
            .any_match(&self.block, req, &lower_url, &lower_host)
    }

    /// Does any exception rule match this request?
    pub fn matches_exception(&self, req: &RequestInfo<'_>) -> bool {
        let lower_url = lowered_url(req);
        let lower_host = lowered_host(req);
        self.index()
            .except
            .any_match(&self.except, req, &lower_url, &lower_host)
    }

    /// The paper's tracking oracle: a URL is a tracking request when a
    /// blocking rule matches and no exception rule overrides it.
    ///
    /// The request URL and host are lowercased once here; the candidate
    /// index keeps the number of rules actually evaluated small.
    pub fn is_tracking(&self, req: &RequestInfo<'_>) -> bool {
        let idx = self.index();
        let lower_url = lowered_url(req);
        let lower_host = lowered_host(req);
        idx.block
            .any_match(&self.block, req, &lower_url, &lower_host)
            && !idx
                .except
                .any_match(&self.except, req, &lower_url, &lower_host)
    }

    /// Reference implementation of [`FilterList::matches_block`]: a
    /// linear scan over every blocking rule. Kept as the semantic oracle
    /// the index is tested against.
    pub fn matches_block_linear(&self, req: &RequestInfo<'_>) -> bool {
        self.block.iter().any(|r| r.matches(req))
    }

    /// Reference implementation of [`FilterList::matches_exception`].
    pub fn matches_exception_linear(&self, req: &RequestInfo<'_>) -> bool {
        self.except.iter().any(|r| r.matches(req))
    }

    /// Reference implementation of [`FilterList::is_tracking`] (linear
    /// scan, per-rule lowercasing).
    pub fn is_tracking_linear(&self, req: &RequestInfo<'_>) -> bool {
        self.matches_block_linear(req) && !self.matches_exception_linear(req)
    }
}

/// The request URL, serialized and lowercased in one buffer (the
/// serialization already allocates; lowercasing reuses it).
fn lowered_url(req: &RequestInfo<'_>) -> String {
    let mut s = req.url.as_str();
    s.make_ascii_lowercase();
    s
}

/// The request host, lowercased only when needed — `Url::parse`
/// lowercases hosts, so the borrow is the overwhelmingly common case.
fn lowered_host<'a>(req: &RequestInfo<'a>) -> std::borrow::Cow<'a, str> {
    let host = req.url.host();
    if host.bytes().any(|b| b.is_ascii_uppercase()) {
        std::borrow::Cow::Owned(host.to_ascii_lowercase())
    } else {
        std::borrow::Cow::Borrowed(host)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmtree_net::ResourceType;
    use wmtree_url::Url;

    fn req<'a>(url: &'a Url, page: &'a Url, ty: ResourceType) -> RequestInfo<'a> {
        RequestInfo::new(url, page, ty)
    }

    #[test]
    fn parse_counts_rules() {
        let list = FilterList::parse("! comment\n||a.com^\n@@||a.com/ok\n##.ad-banner\n\n/track/*");
        assert_eq!(list.block_rule_count(), 2);
        assert_eq!(list.exception_rule_count(), 1);
    }

    #[test]
    fn block_and_exception_interplay() {
        let list = FilterList::parse("||ads.example.com^\n@@||ads.example.com/whitelisted^");
        let page = Url::parse("https://site.com/").unwrap();
        let blocked = Url::parse("https://ads.example.com/banner.png").unwrap();
        let white = Url::parse("https://ads.example.com/whitelisted/x.png").unwrap();
        assert!(list.is_tracking(&req(&blocked, &page, ResourceType::Image)));
        assert!(!list.is_tracking(&req(&white, &page, ResourceType::Image)));
    }

    #[test]
    fn empty_list_matches_nothing() {
        let list = FilterList::parse("");
        let page = Url::parse("https://site.com/").unwrap();
        let u = Url::parse("https://tracker.com/px").unwrap();
        assert!(!list.is_tracking(&req(&u, &page, ResourceType::Image)));
    }
}
