//! Network filter rules: pattern + options, and the request context they
//! are evaluated against.

use crate::matcher::Pattern;
use serde::{Deserialize, Serialize};
use wmtree_net::ResourceType;
use wmtree_url::{psl, Url};

/// The request being classified: its URL, the page that generated it,
/// and its resource type.
#[derive(Debug, Clone, Copy)]
pub struct RequestInfo<'a> {
    /// URL of the candidate request.
    pub url: &'a Url,
    /// URL of the visited page (first-party context).
    pub page: &'a Url,
    /// Resource type of the request.
    pub resource_type: ResourceType,
}

impl<'a> RequestInfo<'a> {
    /// Bundle a request context.
    pub fn new(url: &'a Url, page: &'a Url, resource_type: ResourceType) -> Self {
        RequestInfo {
            url,
            page,
            resource_type,
        }
    }

    /// Is this request third-party w.r.t. the page?
    pub fn is_third_party(&self) -> bool {
        !psl::same_site(self.url.host(), self.page.host())
    }
}

/// Bitmask of resource types a rule applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TypeMask(pub u16);

impl TypeMask {
    /// Matches every type.
    pub const ALL: TypeMask = TypeMask(u16::MAX);

    fn bit(ty: ResourceType) -> u16 {
        match ty {
            ResourceType::Script => 1 << 0,
            ResourceType::Image | ResourceType::ImageSet => 1 << 1,
            ResourceType::Stylesheet => 1 << 2,
            ResourceType::SubFrame => 1 << 3,
            ResourceType::Xhr => 1 << 4,
            ResourceType::WebSocket => 1 << 5,
            ResourceType::Font => 1 << 6,
            ResourceType::Media => 1 << 7,
            ResourceType::Beacon => 1 << 8,
            ResourceType::CspReport => 1 << 9,
            ResourceType::MainFrame => 1 << 10,
            ResourceType::Other => 1 << 11,
        }
    }

    /// A mask of exactly one resource type.
    pub fn only(ty: ResourceType) -> TypeMask {
        TypeMask(Self::bit(ty))
    }

    /// Add a type to the mask.
    pub fn with(self, ty: ResourceType) -> TypeMask {
        TypeMask(self.0 | Self::bit(ty))
    }

    /// Does the mask include the type?
    pub fn includes(self, ty: ResourceType) -> bool {
        self.0 & Self::bit(ty) != 0
    }

    /// ABP option name → type, for the parser.
    pub fn from_option_name(name: &str) -> Option<ResourceType> {
        Some(match name {
            "script" => ResourceType::Script,
            "image" => ResourceType::Image,
            "stylesheet" => ResourceType::Stylesheet,
            "subdocument" => ResourceType::SubFrame,
            "xmlhttprequest" => ResourceType::Xhr,
            "websocket" => ResourceType::WebSocket,
            "font" => ResourceType::Font,
            "media" => ResourceType::Media,
            "ping" | "beacon" => ResourceType::Beacon,
            "csp-report" => ResourceType::CspReport,
            "document" => ResourceType::MainFrame,
            "other" => ResourceType::Other,
            _ => return None,
        })
    }
}

/// Parsed `$…` options of a rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuleOptions {
    /// `Some(true)` for `$third-party`, `Some(false)` for `$~third-party`.
    pub third_party: Option<bool>,
    /// Resource types the rule applies to.
    pub types: TypeMask,
    /// `$domain=` inclusions (page site must be one of these, if non-empty).
    pub include_domains: Vec<String>,
    /// `$domain=~` exclusions (page site must not be one of these).
    pub exclude_domains: Vec<String>,
    /// `$match-case` — patterns are case-sensitive (default: insensitive).
    pub match_case: bool,
}

impl Default for RuleOptions {
    fn default() -> Self {
        RuleOptions {
            third_party: None,
            types: TypeMask::ALL,
            include_domains: Vec::new(),
            exclude_domains: Vec::new(),
            match_case: false,
        }
    }
}

/// A single network filter rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FilterRule {
    pattern: Pattern,
    options: RuleOptions,
}

impl FilterRule {
    /// Construct from a compiled pattern and options (used by the parser).
    pub(crate) fn new(pattern: Pattern, options: RuleOptions) -> Self {
        FilterRule { pattern, options }
    }

    /// The rule's options.
    pub fn options(&self) -> &RuleOptions {
        &self.options
    }

    /// The rule's compiled pattern (for the candidate index).
    pub(crate) fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// Evaluate the rule against a request.
    pub fn matches(&self, req: &RequestInfo<'_>) -> bool {
        // Options first (cheap), then the pattern scan.
        if !self.options_match(req) {
            return false;
        }
        let target = req.url.as_str();
        if self.options.match_case {
            self.pattern.matches(&target, req.url.host())
        } else {
            self.pattern.matches(
                &target.to_ascii_lowercase(),
                &req.url.host().to_ascii_lowercase(),
            )
        }
    }

    /// Like [`FilterRule::matches`], but with the request URL and host
    /// already lowercased by the caller — [`crate::FilterList`] prepares
    /// them once per request instead of once per rule.
    pub(crate) fn matches_lowered(
        &self,
        req: &RequestInfo<'_>,
        lower_url: &str,
        lower_host: &str,
    ) -> bool {
        if !self.options_match(req) {
            return false;
        }
        if self.options.match_case {
            self.pattern.matches(&req.url.as_str(), req.url.host())
        } else {
            self.pattern.matches(lower_url, lower_host)
        }
    }

    fn options_match(&self, req: &RequestInfo<'_>) -> bool {
        if !self.options.types.includes(req.resource_type) {
            return false;
        }
        if let Some(want_third) = self.options.third_party {
            if req.is_third_party() != want_third {
                return false;
            }
        }
        if !self.options.include_domains.is_empty() || !self.options.exclude_domains.is_empty() {
            let page_site = req.page.site();
            if !self.options.include_domains.is_empty()
                && !self
                    .options
                    .include_domains
                    .iter()
                    .any(|d| domain_or_superdomain(&page_site, d))
            {
                return false;
            }
            if self
                .options
                .exclude_domains
                .iter()
                .any(|d| domain_or_superdomain(&page_site, d))
            {
                return false;
            }
        }
        true
    }
}

/// Is `site` equal to `rule_domain` or a subdomain of it?
fn domain_or_superdomain(site: &str, rule_domain: &str) -> bool {
    site == rule_domain
        || (site.ends_with(rule_domain)
            && site.as_bytes().get(site.len() - rule_domain.len() - 1) == Some(&b'.'))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_mask_roundtrip() {
        let m = TypeMask::only(ResourceType::Script).with(ResourceType::Image);
        assert!(m.includes(ResourceType::Script));
        assert!(m.includes(ResourceType::Image));
        assert!(m.includes(ResourceType::ImageSet)); // shares the image bit
        assert!(!m.includes(ResourceType::Font));
        assert!(TypeMask::ALL.includes(ResourceType::CspReport));
    }

    #[test]
    fn option_names() {
        assert_eq!(
            TypeMask::from_option_name("script"),
            Some(ResourceType::Script)
        );
        assert_eq!(
            TypeMask::from_option_name("subdocument"),
            Some(ResourceType::SubFrame)
        );
        assert_eq!(
            TypeMask::from_option_name("ping"),
            Some(ResourceType::Beacon)
        );
        assert_eq!(TypeMask::from_option_name("bogus"), None);
    }

    #[test]
    fn third_party_detection() {
        let page = Url::parse("https://www.site.com/").unwrap();
        let own = Url::parse("https://cdn.site.com/a.js").unwrap();
        let other = Url::parse("https://t.tracker.net/a.js").unwrap();
        assert!(!RequestInfo::new(&own, &page, ResourceType::Script).is_third_party());
        assert!(RequestInfo::new(&other, &page, ResourceType::Script).is_third_party());
    }

    #[test]
    fn domain_option_matching() {
        assert!(domain_or_superdomain("sub.example.com", "example.com"));
        assert!(domain_or_superdomain("example.com", "example.com"));
        assert!(!domain_or_superdomain("badexample.com", "example.com"));
    }
}
