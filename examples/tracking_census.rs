//! Tracking census: the §5.3 workload — who tracks, from where, and how
//! stable are those observations across measurement profiles?
//!
//! This example exercises the public API the way a privacy-measurement
//! study would: crawl, classify tracking requests with the filter list,
//! then ask how reliably each tracker would have been observed.
//!
//! ```sh
//! cargo run --release --example tracking_census
//! ```

use std::collections::BTreeMap;
use wmtree::analysis::node_similarity::analyze_all;
use wmtree::{Experiment, ExperimentConfig, Scale};
use wmtree_url::Url;

fn main() {
    let results = Experiment::new(ExperimentConfig::at_scale(Scale::Tiny)).run();
    let sims = analyze_all(&results.data);

    // Census: tracking nodes per third-party site, with presence stats.
    #[derive(Default)]
    struct Entry {
        nodes: usize,
        in_all_profiles: usize,
        in_one_profile: usize,
        sites: std::collections::BTreeSet<String>,
    }
    let mut census: BTreeMap<String, Entry> = BTreeMap::new();

    for page in &sims {
        for node in &page.nodes {
            if !node.tracking {
                continue;
            }
            let Ok(url) = Url::parse(&node.key) else {
                continue;
            };
            let entry = census.entry(url.site()).or_default();
            entry.nodes += 1;
            entry.sites.insert(page.site.to_string());
            if node.present_in == page.n_trees {
                entry.in_all_profiles += 1;
            }
            if node.present_in == 1 {
                entry.in_one_profile += 1;
            }
        }
    }

    println!("== Tracking census over {} vetted pages ==", sims.len());
    println!(
        "{:<24} {:>7} {:>9} {:>10} {:>10}",
        "tracker (eTLD+1)", "nodes", "on sites", "in all", "in one"
    );
    let mut rows: Vec<_> = census.into_iter().collect();
    rows.sort_by_key(|(_, e)| std::cmp::Reverse(e.nodes));
    for (tracker, e) in rows {
        println!(
            "{:<24} {:>7} {:>9} {:>9.0}% {:>9.0}%",
            tracker,
            e.nodes,
            e.sites.len(),
            100.0 * e.in_all_profiles as f64 / e.nodes as f64,
            100.0 * e.in_one_profile as f64 / e.nodes as f64,
        );
    }

    // The headline §5.3 message: would a single-profile study have seen
    // the same trackers?
    let all_tracking: Vec<_> = sims
        .iter()
        .flat_map(|p| &p.nodes)
        .filter(|n| n.tracking)
        .collect();
    let stable = all_tracking.iter().filter(|n| n.present_in == 5).count();
    println!(
        "\n{} tracking nodes total; {:.0}% visible to every profile — a single-profile crawl \
         captures only a partial view (§5.3).",
        all_tracking.len(),
        100.0 * stable as f64 / all_tracking.len().max(1) as f64
    );
}
