//! Record a crawl once, replay every analysis from the archive.
//!
//! The paper's analyses are re-runnable because its raw data was
//! released (Appendix A). This example is that workflow end to end:
//! crawl into a `wmtree-bundle` archive — deliberately interrupting and
//! resuming it along the way — then run the analysis pipeline twice
//! *purely from the archive*, never touching the crawler again, and
//! show the object store's deduplication accounting from telemetry.
//!
//! ```sh
//! cargo run --release --example bundle_replay -- /tmp/wmtree-bundle-replay
//! ```

use wmtree::analysis::node_similarity::analyze_all;
use wmtree::telemetry::MetricValue;
use wmtree::{BundleRun, Experiment, ExperimentConfig, Report, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::path::PathBuf::from(
        std::env::args()
            .nth(1)
            .unwrap_or_else(|| "/tmp/wmtree-bundle-replay".to_string()),
    );
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir)?;

    let exp = Experiment::new(ExperimentConfig::at_scale(Scale::Tiny));

    // 1. Record — interrupted on purpose after three sites, then
    //    resumed. The finished archive is byte-identical to one written
    //    by an uninterrupted run.
    println!("== Recording ==");
    let before = wmtree::telemetry::global().snapshot();
    match exp.run_to_bundle(&dir, Some(3))? {
        BundleRun::Partial {
            sites_done,
            sites_total,
            ..
        } => println!("interrupted: checkpointed {sites_done}/{sites_total} sites"),
        BundleRun::Complete { .. } => println!("universe smaller than the cap; done in one go"),
    }
    let (crawled, bundle) = match exp.run_to_bundle(&dir, None)? {
        BundleRun::Complete { results, bundle } => (results, bundle),
        BundleRun::Partial {
            sites_done,
            sites_total,
            ..
        } => return Err(format!("still partial after resume: {sites_done}/{sites_total}").into()),
    };
    println!(
        "resumed to completion: {} visit records over {} checkpointed sites",
        bundle.visit_records, bundle.checkpoints
    );

    // Dedup accounting, from the telemetry counters the writer bumps.
    let recorded = wmtree::telemetry::global().snapshot().since(&before);
    let counter = |name: &str| match recorded.metrics.get(name) {
        Some(MetricValue::Counter(n)) => *n,
        _ => 0,
    };
    let stored = counter("bundle.objects.stored");
    let hits = counter("bundle.objects.dedup_hits");
    println!(
        "object store: {stored} unique payloads, {hits} dedup hits — \
         dedup ratio {:.3} ({} bytes appended)",
        bundle.dedup_ratio(),
        counter("bundle.bytes.written"),
    );

    // 2. Replay — the analysis pipeline fed purely from the archive.
    println!("\n== Replaying from {} ==", dir.display());
    let replayed = exp.replay_from_bundle(&dir)?;

    // Analysis A: node-presence census across the five profiles.
    let sims = analyze_all(&replayed.data);
    let (mut nodes, mut in_all, mut in_one) = (0usize, 0usize, 0usize);
    for page in &sims {
        for node in &page.nodes {
            nodes += 1;
            if node.present_in == page.n_trees {
                in_all += 1;
            }
            if node.present_in == 1 {
                in_one += 1;
            }
        }
    }
    println!(
        "census over {} vetted pages: {} nodes, {:.0}% in all profiles, {:.0}% in one",
        sims.len(),
        nodes,
        100.0 * in_all as f64 / nodes.max(1) as f64,
        100.0 * in_one as f64 / nodes.max(1) as f64,
    );

    // Analysis B: the full paper-style report — byte-identical to the
    // one computed from the live crawl.
    let from_crawl = Report::generate(&crawled).render();
    let from_bundle = Report::generate(&replayed).render();
    assert_eq!(
        from_crawl, from_bundle,
        "replayed report must match the crawled one byte-for-byte"
    );
    println!(
        "full report from the archive matches the crawled run byte-for-byte ({} bytes)",
        from_bundle.len()
    );
    Ok(())
}
