//! Cookie audit: the §5.2 workload — compare the cookies each
//! measurement profile observes on the same pages, including security
//! attributes (Secure / HttpOnly / SameSite).
//!
//! ```sh
//! cargo run --release --example cookie_audit
//! ```

use std::collections::{BTreeMap, BTreeSet};
use wmtree::analysis::cookies::cookie_stats;
use wmtree::{Experiment, ExperimentConfig, Scale};

fn main() {
    let results = Experiment::new(ExperimentConfig::at_scale(Scale::Tiny)).run();
    let data = &results.data;

    let stats = cookie_stats(data, data.profile_index("NoAction"));
    println!("== Cookie audit over {} vetted pages ==", data.pages.len());
    println!("total observations: {}", stats.total_observations);
    println!(
        "distinct cookies (name, domain, path): {}",
        stats.distinct_cookies
    );
    for (name, count) in data.profile_names.iter().zip(&stats.per_profile) {
        println!("  {name:<9} observed {count} cookies");
    }
    println!(
        "seen by all profiles: {:.0}%   seen by exactly one: {:.0}%",
        stats.share_in_all * 100.0,
        stats.share_in_one * 100.0
    );
    println!(
        "per-page cookie-set similarity: {:.2} (vs NoAction only: {:.2})",
        stats.per_page_similarity.mean, stats.interaction_vs_noaction.mean
    );
    println!(
        "cookies with conflicting security attributes: {}",
        stats.attribute_conflicts
    );

    // Show the top cookie-setting domains and how consistently they set.
    let mut per_domain: BTreeMap<String, BTreeSet<usize>> = BTreeMap::new();
    let mut domain_count: BTreeMap<String, usize> = BTreeMap::new();
    for page in &data.pages {
        for (profile, observations) in page.cookies.iter().enumerate() {
            for obs in observations {
                per_domain
                    .entry(obs.id.domain.clone())
                    .or_default()
                    .insert(profile);
                *domain_count.entry(obs.id.domain.clone()).or_insert(0) += 1;
            }
        }
    }
    let mut rows: Vec<_> = domain_count.into_iter().collect();
    rows.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
    println!("\n{:<28} {:>8} {:>10}", "cookie domain", "set", "profiles");
    for (domain, count) in rows.into_iter().take(12) {
        println!(
            "{:<28} {:>8} {:>9}/5",
            domain,
            count,
            per_domain[&domain].len()
        );
    }

    println!(
        "\nTakeaway (§5.2): even with identical page lists, profiles observe different\n\
         cookie sets — measurement studies comparing cookie counts across setups are\n\
         comparing different underlying populations."
    );
}
