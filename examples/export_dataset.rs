//! Export a complete dataset the way the paper releases its artifacts
//! (Appendix A): the raw per-visit records as JSONL, one example visit
//! as a HAR file, the aggregated report as JSON, and every figure as
//! CSV ready for plotting.
//!
//! ```sh
//! cargo run --release --example export_dataset -- /tmp/wmtree-dataset
//! ```

use std::collections::BTreeMap;
use wmtree::analysis::ExperimentData;
use wmtree::browser::har::to_har_json;
use wmtree::crawler::{export, standard_profiles, Commander, CrawlOptions};
use wmtree::filterlist::embedded::tracking_list;
use wmtree::tree::TreeConfig;
use wmtree::webgen::{UniverseConfig, WebUniverse};
use wmtree::{Report, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = std::path::PathBuf::from(
        std::env::args()
            .nth(1)
            .unwrap_or_else(|| "/tmp/wmtree-dataset".to_string()),
    );
    std::fs::create_dir_all(&out_dir)?;

    // Crawl.
    let scale = Scale::Tiny;
    let universe = WebUniverse::generate(UniverseConfig {
        seed: 0x2023_11ac,
        sites_per_bucket: scale.sites_per_bucket(),
        max_subpages: scale.max_pages(),
    });
    let profiles = standard_profiles();
    let names: Vec<String> = profiles.iter().map(|p| p.name.clone()).collect();
    let db = Commander::new(
        &universe,
        profiles,
        CrawlOptions {
            max_pages_per_site: scale.max_pages(),
            workers: 4,
            experiment_seed: 0x1317,
            reliable: false,
            stateful: false,
        },
    )
    .run();

    // 1. Raw data: JSONL of every (page, profile) visit.
    let raw_path = out_dir.join("raw_visits.jsonl");
    let file = std::fs::File::create(&raw_path)?;
    let written = export::write_jsonl(&db, std::io::BufWriter::new(file))?;
    println!("wrote {written} visit records to {}", raw_path.display());

    // 2. One example HAR (the first vetted page, Sim1's visit).
    if let Some((page, visits)) = db.vetted_pages().into_iter().next() {
        let har_path = out_dir.join("example_visit.har");
        std::fs::write(&har_path, to_har_json(visits[1]))?;
        println!("wrote HAR of {} to {}", page.url, har_path.display());
    }

    // 3. Aggregated report (JSON) + figure CSVs.
    let site_meta: BTreeMap<String, (u32, String)> = universe
        .sites()
        .iter()
        .map(|s| (s.domain.clone(), (s.rank, s.bucket.label().to_string())))
        .collect();
    let data = ExperimentData::from_db(
        &db,
        names,
        Some(tracking_list()),
        &TreeConfig::default(),
        &site_meta,
    );
    let sims = wmtree::analysis::node_similarity::analyze_all(&data);
    let results = wmtree::ExperimentResults {
        profile_stats: db.profile_stats(),
        pages_discovered: db.page_count(),
        successful_visits: db.total_successful_visits(),
        vetted_sites: db.vetted_sites().len(),
        sims,
        data,
        manifest: wmtree::telemetry::RunManifest::new(0x1317, "export_dataset"),
    };
    let report = Report::generate(&results);
    std::fs::write(out_dir.join("report.json"), report.to_json())?;
    let csvs = report.write_csv_dir(&out_dir.join("csv"))?;
    println!("wrote report.json and {} CSV files", csvs.len());

    // 4. Round-trip check: the raw data re-imports losslessly.
    let file = std::fs::File::open(&raw_path)?;
    let back = export::read_jsonl(std::io::BufReader::new(file), db.n_profiles())?;
    assert_eq!(back.page_count(), db.page_count());
    assert_eq!(back.total_successful_visits(), db.total_successful_visits());
    println!(
        "round-trip verified: {} pages, {} successful visits",
        back.page_count(),
        back.total_successful_visits()
    );
    Ok(())
}
