//! Quickstart: run the paper's five-profile measurement at laptop scale
//! and print the full paper-style report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use wmtree::{Experiment, ExperimentConfig, Report, Scale};

fn main() {
    // A Tiny run finishes in seconds; switch to Scale::Small / Medium /
    // Large for bigger universes (the pipeline is identical).
    let scale = match std::env::args().nth(1).as_deref() {
        Some("small") => Scale::Small,
        Some("medium") => Scale::Medium,
        Some("large") => Scale::Large,
        _ => Scale::Tiny,
    };

    println!("Generating synthetic web universe and crawling with 5 profiles ({scale:?})...");
    let config = ExperimentConfig::at_scale(scale);
    let experiment = Experiment::new(config);
    println!(
        "universe: {} sites (ranks {}..{})",
        experiment.universe().sites().len(),
        experiment
            .universe()
            .sites()
            .first()
            .map(|s| s.rank)
            .unwrap_or(0),
        experiment
            .universe()
            .sites()
            .last()
            .map(|s| s.rank)
            .unwrap_or(0),
    );

    let results = experiment.run();
    println!(
        "crawled: {} pages discovered, {} successful visits, {} pages vetted\n",
        results.pages_discovered,
        results.successful_visits,
        results.data.pages.len()
    );

    let report = Report::generate(&results);
    println!("{}", report.render());
}
