//! Plan → per-shard crawl → streaming merge, end to end on Tiny.
//!
//! The paper's full corpus (~1.7M page visits at `Scale::Huge`) cannot
//! live in one in-memory database. This example runs the out-of-core
//! pipeline on a laptop-sized universe: partition the rank-sorted site
//! list into shards (`SHARDS.json`), crawl each shard into its own
//! resumable bundle — interrupting and resuming one on purpose — then
//! merge the analysis one shard at a time and show that the merged
//! report is byte-identical to a monolithic single-process run while
//! peak residency stayed one shard.
//!
//! ```sh
//! cargo run --release --example sharded_run -- /tmp/wmtree-sharded-run
//! ```

use wmtree::{Experiment, ExperimentConfig, Report, Scale};
use wmtree_shard::{crawl_shard, merge_shards, ShardCrawl, ShardPlan};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::path::PathBuf::from(
        std::env::args()
            .nth(1)
            .unwrap_or_else(|| "/tmp/wmtree-sharded-run".to_string()),
    );
    let _ = std::fs::remove_dir_all(&dir);

    let exp = Experiment::new(ExperimentConfig::at_scale(Scale::Tiny));

    // 1. Plan — deterministic rank-range partition, persisted as
    //    SHARDS.json. Shard id order is rank order.
    println!("== Planning ==");
    let plan = ShardPlan::new(&exp, 3)?;
    plan.store(&dir)?;
    for s in &plan.shards {
        println!(
            "shard {}: ranks {}-{} ({} sites) -> {}",
            s.id,
            s.rank_lo,
            s.rank_hi,
            s.sites(),
            s.dir
        );
    }

    // 2. Crawl — each shard independently resumable. Shard 1 is
    //    interrupted after two sites and resumed; its finished bundle
    //    is byte-identical to an uninterrupted one, so the content
    //    hash recorded in SHARDS.json is unaffected. In a real Huge
    //    run each shard would be its own OS process
    //    (`repro --shard-dir DIR --shard-id K`).
    println!("\n== Crawling ==");
    match crawl_shard(&exp, &dir, 1, Some(2))? {
        ShardCrawl::Partial {
            sites_done,
            sites_total,
        } => println!("shard 1 interrupted at {sites_done}/{sites_total} sites"),
        ShardCrawl::Complete { .. } => println!("shard 1 smaller than the cap; done in one go"),
    }
    for id in 0..plan.shards.len() {
        match crawl_shard(&exp, &dir, id, None)? {
            ShardCrawl::Complete { pages, bundle_hash } => {
                println!("shard {id} complete: {pages} pages, hash {bundle_hash}");
            }
            ShardCrawl::Partial { .. } => unreachable!("uncapped crawls complete"),
        }
    }

    // 3. Merge — one shard-bundle in memory at a time, folded in rank
    //    order into mergeable partial accumulators.
    println!("\n== Merging ==");
    let merged = merge_shards(&exp, &dir)?;
    println!(
        "merged {} pages across {} vetted sites; peak residency {} pages (largest shard)",
        merged.digest.pages, merged.digest.vetted_sites, merged.peak_shard_pages
    );

    // 4. Identity — the merged report matches a monolithic in-memory
    //    run byte for byte.
    let mono = Experiment::new(ExperimentConfig::at_scale(Scale::Tiny)).run();
    let merged_report = Report::generate(&merged.results).render();
    let mono_report = Report::generate(&mono).render();
    assert_eq!(merged_report, mono_report, "sharded != monolithic");
    println!(
        "\nmerged report is byte-identical to the single-process run ({} bytes)",
        merged_report.len()
    );

    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
