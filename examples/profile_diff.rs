//! Profile diff: for concrete pages, show *where* two measurement
//! profiles disagree — which nodes one setup saw and the other did not,
//! which nodes moved within the tree, and how that adds up per page.
//!
//! This is the debugging view a measurement study needs when two
//! supposedly comparable crawls report different numbers.
//!
//! ```sh
//! cargo run --release --example profile_diff            # Sim1 vs NoAction
//! cargo run --release --example profile_diff Sim1 Sim2  # any pair
//! ```

use wmtree::tree::{diff_trees, NodeDisposition};
use wmtree::{Experiment, ExperimentConfig, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let left_name = args
        .first()
        .map(String::as_str)
        .unwrap_or("Sim1")
        .to_string();
    let right_name = args
        .get(1)
        .map(String::as_str)
        .unwrap_or("NoAction")
        .to_string();

    let results = Experiment::new(ExperimentConfig::at_scale(Scale::Tiny)).run();
    let data = &results.data;
    let left = data
        .profile_index(&left_name)
        .expect("unknown left profile");
    let right = data
        .profile_index(&right_name)
        .expect("unknown right profile");

    println!("== {left_name} vs {right_name}: per-page tree diffs ==\n");
    println!(
        "{:<44} {:>7} {:>7} {:>7} {:>7} {:>7} {:>9}",
        "page", "stable", "repar.", "moved", "only-L", "only-R", "Jaccard"
    );

    let mut agg = (0usize, 0usize, 0usize, 0usize, 0usize);
    let mut most_divergent: Option<(f64, String)> = None;
    for page in &data.pages {
        let d = diff_trees(&page.trees[left], &page.trees[right]);
        agg.0 += d.stable;
        agg.1 += d.reparented;
        agg.2 += d.moved;
        agg.3 += d.only_left;
        agg.4 += d.only_right;
        let j = d.node_jaccard();
        let short: String = page.url.chars().take(42).collect();
        println!(
            "{short:<44} {:>7} {:>7} {:>7} {:>7} {:>7} {:>9.2}",
            d.stable, d.reparented, d.moved, d.only_left, d.only_right, j
        );
        if most_divergent
            .as_ref()
            .map(|(bj, _)| j < *bj)
            .unwrap_or(true)
        {
            most_divergent = Some((j, page.url.clone()));
        }
    }

    let total = agg.0 + agg.1 + agg.2 + agg.3 + agg.4;
    println!(
        "\nTotals: {} nodes | stable {:.0}% | reparented {:.0}% | moved {:.0}% | {left_name}-only {:.0}% | {right_name}-only {:.0}%",
        total,
        100.0 * agg.0 as f64 / total as f64,
        100.0 * agg.1 as f64 / total as f64,
        100.0 * agg.2 as f64 / total as f64,
        100.0 * agg.3 as f64 / total as f64,
        100.0 * agg.4 as f64 / total as f64,
    );

    // Zoom into the most divergent page.
    if let Some((j, url)) = most_divergent {
        let page = data.pages.iter().find(|p| p.url == url).unwrap();
        let d = diff_trees(&page.trees[left], &page.trees[right]);
        println!("\n== Most divergent page (Jaccard {j:.2}): {url} ==");
        for entry in d
            .entries
            .iter()
            .filter(|e| e.disposition != NodeDisposition::Stable)
            .take(15)
        {
            let key: String = entry.key.chars().take(68).collect();
            match entry.disposition {
                NodeDisposition::OnlyLeft => println!("  [-] only {left_name}: {key}"),
                NodeDisposition::OnlyRight => println!("  [+] only {right_name}: {key}"),
                NodeDisposition::Reparented => println!(
                    "  [~] reparented: {key}\n      {} -> {}",
                    entry.left_parent.as_deref().unwrap_or("?"),
                    entry.right_parent.as_deref().unwrap_or("?")
                ),
                NodeDisposition::Moved => println!(
                    "  [^] moved d{} -> d{}: {key}",
                    entry.left_depth.unwrap_or(0),
                    entry.right_depth.unwrap_or(0)
                ),
                NodeDisposition::Stable => {}
            }
        }
    }
}
