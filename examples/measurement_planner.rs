//! Measurement planner: the §8 takeaways turned into a tool.
//!
//! Before running a (costly) measurement study, ask: how much of the
//! phenomenon will one crawl capture, and how many repeated/parallel
//! measurements are worth it? This example answers both with the
//! stability metrics (profile accumulation curve, single-profile
//! recall) and validates them against the synthetic web's ground truth
//! (the statically enumerated content inventory).
//!
//! ```sh
//! cargo run --release --example measurement_planner
//! ```

use wmtree::analysis::stability;
use wmtree::webgen::inventory::{page_inventory, GateClass};
use wmtree::webgen::VisitCtx;
use wmtree::{Experiment, ExperimentConfig, Scale};

fn main() {
    let config = ExperimentConfig::at_scale(Scale::Tiny).reliable();
    let experiment = Experiment::new(config);

    // --- Ground truth: what is even out there? ------------------------
    println!("== Ground truth (static content inventory) ==");
    let mut shares = std::collections::BTreeMap::new();
    let mut pages = 0.0;
    for site in experiment.universe().sites().iter().take(12) {
        let inv = page_inventory(
            experiment.universe(),
            &site.landing_url(),
            &VisitCtx::standard(1),
            4000,
        );
        for gate in [
            GateClass::Always,
            GateClass::Interaction,
            GateClass::PerVisit,
            GateClass::Version,
            GateClass::Headless,
        ] {
            *shares.entry(format!("{gate:?}")).or_insert(0.0) += inv.share(gate);
        }
        pages += 1.0;
    }
    for (gate, sum) in &shares {
        println!(
            "  {gate:<12} {:.0}% of reachable content",
            100.0 * sum / pages
        );
    }

    // --- Measured: what does a crawl actually capture? ----------------
    let results = experiment.run();
    let report = stability::experiment_stability(&results.data, &results.sims);

    println!(
        "\n== Measured stability ({} vetted pages) ==",
        results.data.pages.len()
    );
    println!(
        "page stability index: {:.2} (SD {:.2})",
        report.page_index.mean, report.page_index.sd
    );
    println!("single-profile recall per profile:");
    for (name, recall) in results
        .data
        .profile_names
        .iter()
        .zip(&report.recall.per_profile)
    {
        println!(
            "  {name:<9} captures {:.0}% of the observable nodes",
            recall * 100.0
        );
    }

    println!("\nprofile accumulation curve (coverage of the 5-profile union):");
    for (i, cov) in report.accumulation.iter().enumerate() {
        let bar = "#".repeat((cov * 40.0) as usize);
        println!("  {} profile(s): {:>5.1}%  {bar}", i + 1, cov * 100.0);
    }
    println!(
        "marginal gain of profile 5: {:.1}%",
        report.marginal_gain_last * 100.0
    );

    println!(
        "\nPlanning guidance (the paper's takeaways #1/#4):\n\
         * one profile misses ~{:.0}% of the page — single-crawl studies under-report;\n\
         * the curve's knee tells you how many parallel measurements buy real coverage;\n\
         * interaction-gated ground truth ({:.0}%) bounds what a NoAction setup can ever see.",
        (1.0 - report.recall.overall.mean) * 100.0,
        100.0 * shares.get("Interaction").copied().unwrap_or(0.0) / pages,
    );
}
