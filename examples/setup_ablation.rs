//! Setup ablation: measure how each methodological design choice of the
//! paper changes the outcome (DESIGN.md §5 / paper §3.2, §6, §4.4).
//!
//! ```sh
//! cargo run --release --example setup_ablation
//! ```

use wmtree::ablation;
use wmtree::{ExperimentConfig, Scale};

fn main() {
    let config = ExperimentConfig::at_scale(Scale::Tiny).reliable();

    println!("Running seven methodology ablations (each re-analyzes or re-crawls)...\n");
    for outcome in [
        ablation::url_normalization(&config),
        ablation::callstack_mode(&config),
        ablation::vetting(&config),
        ablation::interaction_variants(&config),
        ablation::tree_metric(&config),
        ablation::statefulness(&config),
        ablation::filter_lists(&config),
    ] {
        println!("== {} ==", outcome.knob);
        for (label, value) in &outcome.arms {
            println!("  {label:<32} {value:.3}");
        }
        println!();
    }

    println!(
        "Reading guide:\n\
         * url-normalization: raw URLs split equal resources apart — similarity drops,\n\
           node counts inflate (the paper's §6 argument for stripping query values).\n\
         * vetting: relaxing the all-profiles rule keeps more pages but compares\n\
           incomplete profile sets.\n\
         * user-interaction: simulated keystrokes load substantially more content\n\
           (the paper's Sim1 sees ~34% more nodes than NoAction).\n\
         * tree-metric: edge-set (structural) similarity is stricter than node-set\n\
           similarity; the paper uses node sets to localize differences.\n\
         * statefulness: stateful crawls trigger consent flows once per site, not\n\
           once per page (the paper crawls stateless — Appendix C).\n\
         * filter-lists: combining an EasyPrivacy-style list raises the tracking\n\
           share — comprehensiveness vs. comparability (§6)."
    );
}
