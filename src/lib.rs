//! `wmtree-suite` — umbrella crate for the workspace.
//!
//! This crate exists to host the repository-level integration tests
//! (`tests/`) and runnable examples (`examples/`). The library API lives
//! in [`wmtree`]; everything is re-exported here for convenience.
//!
//! See the repository README for the architecture overview and
//! EXPERIMENTS.md for the paper-vs-measured comparison of every table
//! and figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use wmtree::*;
