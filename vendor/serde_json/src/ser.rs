//! JSON printer for the value tree.

use serde::Value;
use std::fmt::Write;

/// Print a value; `indent = None` is compact, `Some(level)` is pretty
/// with 2-space indentation.
pub fn print(value: &Value, indent: Option<usize>) -> String {
    let mut out = String::new();
    write_value(&mut out, value, indent);
    out
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(i) => {
            let _ = write!(out, "{i}");
        }
        Value::U64(u) => {
            let _ = write!(out, "{u}");
        }
        Value::F64(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => write_seq(out, items, indent),
        Value::Map(entries) => write_map(out, entries, indent),
    }
}

fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        // serde_json's Value model maps non-finite floats to null.
        out.push_str("null");
        return;
    }
    if f == f.trunc() && f.abs() < 1e15 {
        // Keep the decimal point so the value re-parses as a float.
        let _ = write!(out, "{f:.1}");
    } else {
        let _ = write!(out, "{f}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(out: &mut String, items: &[Value], indent: Option<usize>) {
    if items.is_empty() {
        out.push_str("[]");
        return;
    }
    out.push('[');
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(level) = indent {
            newline_indent(out, level + 1);
            write_value(out, item, Some(level + 1));
        } else {
            write_value(out, item, None);
        }
    }
    if let Some(level) = indent {
        newline_indent(out, level);
    }
    out.push(']');
}

fn write_map(out: &mut String, entries: &[(String, Value)], indent: Option<usize>) {
    if entries.is_empty() {
        out.push_str("{}");
        return;
    }
    out.push('{');
    for (i, (key, value)) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(level) = indent {
            newline_indent(out, level + 1);
            write_string(out, key);
            out.push_str(": ");
            write_value(out, value, Some(level + 1));
        } else {
            write_string(out, key);
            out.push(':');
            write_value(out, value, None);
        }
    }
    if let Some(level) = indent {
        newline_indent(out, level);
    }
    out.push('}');
}

fn newline_indent(out: &mut String, level: usize) {
    out.push('\n');
    for _ in 0..level {
        out.push_str("  ");
    }
}
