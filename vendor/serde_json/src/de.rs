//! Recursive-descent JSON parser producing the value tree.

use crate::Error;
use serde::Value;

pub fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), Error> {
        let c = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'b' => out.push('\u{08}'),
            b'f' => out.push('\u{0c}'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xd800..0xdc00).contains(&hi) {
                    // Surrogate pair: expect \uXXXX low surrogate.
                    if !(self.eat_keyword("\\u")) {
                        return Err(self.err("unpaired surrogate"));
                    }
                    let lo = self.hex4()?;
                    if !(0xdc00..0xe000).contains(&lo) {
                        return Err(self.err("invalid low surrogate"));
                    }
                    0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                } else {
                    hi
                };
                out.push(char::from_u32(code).ok_or_else(|| self.err("invalid codepoint"))?);
            }
            _ => return Err(self.err("unknown escape")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(if i >= 0 {
                    Value::U64(i as u64)
                } else {
                    Value::I64(i)
                });
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("invalid number"))
    }
}
