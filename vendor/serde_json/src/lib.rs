//! Offline stand-in for [`serde_json`](https://crates.io/crates/serde_json).
//!
//! Prints and parses JSON over the vendored `serde` shim's [`Value`]
//! tree. Covers the API surface the workspace uses: [`to_string`],
//! [`to_string_pretty`], [`to_writer`], [`from_str`], and [`Error`].
//!
//! Output conventions follow serde_json: float values always carry a
//! decimal point or exponent (`1.0`, not `1`) so they round-trip as
//! floats; non-finite floats serialize as `null`; object keys are
//! emitted in the value tree's order (struct declaration order —
//! deterministic by construction).

mod de;
mod ser;

pub use serde::Value;

use serde::{Deserialize, Serialize};
use std::fmt;
use std::io::Write;

/// JSON serialization/deserialization error.
#[derive(Debug)]
pub struct Error {
    message: String,
}

impl Error {
    pub(crate) fn new(message: impl Into<String>) -> Error {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error::new(e.to_string())
    }
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(ser::print(&value.serialize_value(), None))
}

/// Serialize to a 2-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(ser::print(&value.serialize_value(), Some(0)))
}

/// Serialize compact JSON into a writer.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<(), Error> {
    let s = to_string(value)?;
    writer
        .write_all(s.as_bytes())
        .map_err(|e| Error::new(format!("write error: {e}")))
}

/// Parse a JSON string into a deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = de::parse(s)?;
    Ok(T::deserialize_value(&value)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&3u64).unwrap(), "3");
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("a\"b\n").unwrap(), "\"a\\\"b\\n\"");
        assert_eq!(from_str::<u64>("3").unwrap(), 3);
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(from_str::<String>("\"a\\\"b\\n\"").unwrap(), "a\"b\n");
    }

    #[test]
    fn roundtrip_collections() {
        let v = vec![1u32, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&s).unwrap(), v);

        let m: std::collections::BTreeMap<String, Vec<bool>> =
            [("a".to_string(), vec![true]), ("b".to_string(), vec![])].into();
        let s = to_string(&m).unwrap();
        assert_eq!(s, "{\"a\":[true],\"b\":[]}");
        assert_eq!(
            from_str::<std::collections::BTreeMap<String, Vec<bool>>>(&s).unwrap(),
            m
        );
    }

    #[test]
    fn pretty_printing_indents() {
        let m: std::collections::BTreeMap<String, u32> = [("k".to_string(), 1)].into();
        assert_eq!(to_string_pretty(&m).unwrap(), "{\n  \"k\": 1\n}");
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let v: Vec<Option<Vec<u8>>> = from_str(" [ null , [1, 2] , [] ] ").unwrap();
        assert_eq!(v, vec![None, Some(vec![1, 2]), Some(vec![])]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u32>("{").is_err());
        assert!(from_str::<u32>("1 2").is_err());
        assert!(from_str::<u32>("nul").is_err());
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(from_str::<String>("\"\\u0041\\u00e9\"").unwrap(), "Aé");
        // Surrogate pair (😀 U+1F600).
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "😀");
        assert_eq!(to_string(&"\u{1}".to_string()).unwrap(), "\"\\u0001\"");
    }
}
