//! Hand-rolled parser: derive-input token stream → item description.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A named struct field with its (possibly renamed) serialization key.
pub struct Field {
    pub name: String,
    pub rename: Option<String>,
    /// `#[serde(skip)]`: omitted when serializing, `Default::default()`
    /// when deserializing.
    pub skip: bool,
}

impl Field {
    /// The key this field serializes under.
    pub fn key(&self) -> &str {
        self.rename.as_deref().unwrap_or(&self.name)
    }
}

/// The `#[serde(...)]` attributes collected from one field or item.
#[derive(Default)]
pub struct SerdeAttrs {
    pub rename: Option<String>,
    pub skip: bool,
}

impl SerdeAttrs {
    fn any(&self) -> bool {
        self.rename.is_some() || self.skip
    }
}

/// The field shape of a struct or enum variant.
pub enum Fields {
    Named(Vec<Field>),
    /// Tuple fields; the payload is the field count.
    Tuple(usize),
    Unit,
}

/// An enum variant.
pub struct Variant {
    pub name: String,
    pub fields: Fields,
}

pub enum ItemKind {
    Struct(Fields),
    Enum(Vec<Variant>),
}

pub struct Item {
    pub name: String,
    pub kind: ItemKind,
}

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == word)
    }

    fn at_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    /// Skip `#[...]` attributes, returning the `#[serde(...)]` contents
    /// captured among them (`rename = "..."` and/or `skip`).
    /// Unsupported `#[serde]` attribute contents are an error.
    fn skip_attrs(&mut self) -> Result<SerdeAttrs, String> {
        let mut attrs = SerdeAttrs::default();
        while self.at_punct('#') {
            self.next();
            let group = match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
                _ => return Err("malformed attribute".into()),
            };
            let inner: Vec<TokenTree> = group.stream().into_iter().collect();
            if matches!(inner.first(), Some(TokenTree::Ident(i)) if i.to_string() == "serde") {
                match inner.get(1) {
                    Some(TokenTree::Group(args)) => {
                        parse_serde_args(args.stream(), &mut attrs)?;
                    }
                    _ => return Err("malformed #[serde] attribute".into()),
                }
            }
        }
        Ok(attrs)
    }

    /// Skip `pub` / `pub(...)`.
    fn skip_vis(&mut self) {
        if self.at_ident("pub") {
            self.next();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.next();
            }
        }
    }

    /// Skip tokens until a top-level `,` (angle-bracket aware), leaving
    /// the cursor after the comma. Returns false if the end was reached.
    fn skip_until_comma(&mut self) -> bool {
        let mut angle: i32 = 0;
        while let Some(t) = self.next() {
            if let TokenTree::Punct(p) = &t {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => return true,
                    _ => {}
                }
            }
        }
        false
    }
}

fn parse_serde_args(args: TokenStream, attrs: &mut SerdeAttrs) -> Result<(), String> {
    let tokens: Vec<TokenTree> = args.into_iter().collect();
    match tokens.as_slice() {
        [TokenTree::Ident(key), TokenTree::Punct(eq), TokenTree::Literal(lit)]
            if key.to_string() == "rename" && eq.as_char() == '=' =>
        {
            let raw = lit.to_string();
            attrs.rename = Some(
                raw.strip_prefix('"')
                    .and_then(|s| s.strip_suffix('"'))
                    .map(str::to_owned)
                    .ok_or_else(|| String::from("rename value must be a string literal"))?,
            );
            Ok(())
        }
        [TokenTree::Ident(key)] if key.to_string() == "skip" => {
            attrs.skip = true;
            Ok(())
        }
        _ => Err(
            "vendored serde_derive supports only #[serde(rename = \"...\")] and \
             #[serde(skip)]; extend vendor/serde_derive for anything else"
                .into(),
        ),
    }
}

/// Parse the derive input item.
pub fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut cur = Cursor {
        tokens: input.into_iter().collect(),
        pos: 0,
    };
    cur.skip_attrs()?;
    cur.skip_vis();

    let keyword = match cur.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        _ => return Err("expected `struct` or `enum`".into()),
    };
    let name = match cur.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        _ => return Err("expected item name".into()),
    };
    if cur.at_punct('<') {
        return Err(format!(
            "vendored serde_derive does not support generics (on `{name}`)"
        ));
    }

    match keyword.as_str() {
        "struct" => {
            let fields = match cur.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_named_fields(g.stream())?
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream())?)
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                _ => return Err(format!("unsupported struct body for `{name}`")),
            };
            Ok(Item {
                name,
                kind: ItemKind::Struct(fields),
            })
        }
        "enum" => {
            let body = match cur.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                _ => return Err(format!("expected enum body for `{name}`")),
            };
            Ok(Item {
                name,
                kind: ItemKind::Enum(parse_variants(body)?),
            })
        }
        other => Err(format!("cannot derive serde traits for `{other}` items")),
    }
}

fn parse_named_fields(body: TokenStream) -> Result<Fields, String> {
    let mut cur = Cursor {
        tokens: body.into_iter().collect(),
        pos: 0,
    };
    let mut fields = Vec::new();
    loop {
        let attrs = cur.skip_attrs()?;
        cur.skip_vis();
        let name = match cur.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            _ => return Err("expected field name".into()),
        };
        match cur.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        fields.push(Field {
            name,
            rename: attrs.rename,
            skip: attrs.skip,
        });
        if !cur.skip_until_comma() {
            break;
        }
    }
    Ok(Fields::Named(fields))
}

/// Count the fields of a tuple struct/variant payload.
fn count_tuple_fields(body: TokenStream) -> Result<usize, String> {
    let mut cur = Cursor {
        tokens: body.into_iter().collect(),
        pos: 0,
    };
    let mut count = 0;
    loop {
        if cur.skip_attrs()?.any() {
            return Err("#[serde(...)] attributes are not supported on tuple fields".into());
        }
        cur.skip_vis();
        if cur.peek().is_none() {
            break;
        }
        count += 1;
        if !cur.skip_until_comma() {
            break;
        }
        // Trailing comma: nothing after it.
        if cur.peek().is_none() {
            break;
        }
    }
    Ok(count)
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let mut cur = Cursor {
        tokens: body.into_iter().collect(),
        pos: 0,
    };
    let mut variants = Vec::new();
    loop {
        cur.skip_attrs()?;
        let name = match cur.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            _ => return Err("expected variant name".into()),
        };
        let fields = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(g.stream())?;
                cur.next();
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream())?);
                cur.next();
                f
            }
            _ => Fields::Unit,
        };
        if matches!(&fields, Fields::Tuple(0)) {
            return Err(format!("empty tuple variant `{name}` is not supported"));
        }
        variants.push(Variant { name, fields });
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        if !cur.skip_until_comma() {
            break;
        }
    }
    Ok(variants)
}
