//! Offline stand-in for [`serde_derive`](https://crates.io/crates/serde_derive).
//!
//! Implements `#[derive(Serialize, Deserialize)]` against the vendored
//! `serde` shim's value-tree traits. The item is parsed directly from
//! the `proc_macro` token stream (the build environment has neither
//! `syn` nor `quote`), which restricts the supported shapes to what the
//! workspace uses:
//!
//! - non-generic structs: named fields, tuple/newtype, unit;
//! - non-generic enums: unit, newtype, tuple, and struct variants
//!   (externally tagged, like serde's default);
//! - the `#[serde(rename = "...")]` and `#[serde(skip)]` field
//!   attributes (`skip` omits the field when serializing and fills it
//!   with `Default::default()` when deserializing).
//!
//! Anything else (generics, other `#[serde]` attributes) fails with a
//! dedicated compile error rather than silently misbehaving.

use proc_macro::TokenStream;

mod parse;

use parse::{Fields, Item, ItemKind};

/// Derive `serde::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derive `serde::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    let item = match parse::parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    gen(&item)
        .parse()
        .unwrap_or_else(|e| compile_error(&format!("serde_derive generated invalid code: {e}")))
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg).parse().unwrap()
}

// ------------------------------------------------------------- Serialize

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(fields) => ser_fields_body(fields, "self"),
        ItemKind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let tag = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{tag} => ::serde::Value::Str(::std::string::String::from(\"{tag}\")),\n"
                    )),
                    Fields::Tuple(1) => arms.push_str(&format!(
                        "{name}::{tag}(__f0) => ::serde::Value::Map(::std::vec![(\
                         ::std::string::String::from(\"{tag}\"), \
                         ::serde::Serialize::serialize_value(__f0))]),\n"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{tag}({}) => ::serde::Value::Map(::std::vec![(\
                             ::std::string::String::from(\"{tag}\"), \
                             ::serde::Value::Seq(::std::vec![{}]))]),\n",
                            binds.join(", "),
                            elems.join(", "),
                        ));
                    }
                    Fields::Named(fields) => {
                        let binds: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                if f.skip {
                                    format!("{}: _", f.name)
                                } else {
                                    f.name.clone()
                                }
                            })
                            .collect();
                        let entries: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{}\"), \
                                     ::serde::Serialize::serialize_value({}))",
                                    f.key(),
                                    f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{tag} {{ {} }} => ::serde::Value::Map(::std::vec![(\
                             ::std::string::String::from(\"{tag}\"), \
                             ::serde::Value::Map(::std::vec![{}]))]),\n",
                            binds.join(", "),
                            entries.join(", "),
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}\n}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

/// Serialize a `Fields` payload; `recv` is the expression holding it
/// (`self` for structs).
fn ser_fields_body(fields: &Fields, recv: &str) -> String {
    match fields {
        Fields::Unit => "::serde::Value::Null".to_string(),
        Fields::Tuple(1) => {
            format!("::serde::Serialize::serialize_value(&{recv}.0)")
        }
        Fields::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize_value(&{recv}.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", elems.join(", "))
        }
        Fields::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .filter(|f| !f.skip)
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{}\"), \
                         ::serde::Serialize::serialize_value(&{recv}.{}))",
                        f.key(),
                        f.name
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
    }
}

// ----------------------------------------------------------- Deserialize

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(Fields::Unit) => format!(
            "match __v {{\n\
                 ::serde::Value::Null => ::std::result::Result::Ok({name}),\n\
                 other => ::std::result::Result::Err(::serde::Error::new(\
                     ::std::format!(\"expected null for unit struct {name}, got {{}}\", other.kind()))),\n\
             }}"
        ),
        ItemKind::Struct(Fields::Tuple(1)) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize_value(__v)?))"
        ),
        ItemKind::Struct(Fields::Tuple(n)) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::__private::elem(__items, {i})?"))
                .collect();
            format!(
                "{{ let __items = ::serde::__private::tuple_payload(__v, {n})?;\n\
                 ::std::result::Result::Ok({name}({})) }}",
                elems.join(", ")
            )
        }
        ItemKind::Struct(Fields::Named(fields)) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    if f.skip {
                        format!("{}: ::std::default::Default::default()", f.name)
                    } else {
                        format!("{}: ::serde::__private::field(__v, \"{}\")?", f.name, f.key())
                    }
                })
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        ItemKind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let tag = &v.name;
                let build = match &v.fields {
                    Fields::Unit => format!("::std::result::Result::Ok({name}::{tag})"),
                    Fields::Tuple(1) => format!(
                        "::std::result::Result::Ok({name}::{tag}(\
                         ::serde::Deserialize::deserialize_value(__payload)?))"
                    ),
                    Fields::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::__private::elem(__items, {i})?"))
                            .collect();
                        format!(
                            "{{ let __items = ::serde::__private::tuple_payload(__payload, {n})?;\n\
                             ::std::result::Result::Ok({name}::{tag}({})) }}",
                            elems.join(", ")
                        )
                    }
                    Fields::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                if f.skip {
                                    format!("{}: ::std::default::Default::default()", f.name)
                                } else {
                                    format!(
                                        "{}: ::serde::__private::field(__payload, \"{}\")?",
                                        f.name,
                                        f.key()
                                    )
                                }
                            })
                            .collect();
                        format!(
                            "::std::result::Result::Ok({name}::{tag} {{ {} }})",
                            inits.join(", ")
                        )
                    }
                };
                arms.push_str(&format!("\"{tag}\" => {build},\n"));
            }
            format!(
                "{{ let (__tag, __payload) = ::serde::__private::enum_parts(__v)?;\n\
                 match __tag {{\n{arms}\
                 other => ::std::result::Result::Err(::serde::Error::new(\
                     ::std::format!(\"unknown {name} variant `{{other}}`\"))),\n\
                 }} }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn deserialize_value(__v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}"
    )
}
