//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the criterion surface its benches use: `Criterion` with
//! `warm_up_time` / `measurement_time` / `sample_size`,
//! `bench_function`, `benchmark_group`, and the `criterion_group!` /
//! `criterion_main!` macros. No statistics machinery — each bench warms
//! up, then runs timed samples and prints min/mean/max per iteration.
//!
//! Benches honour the standard harness arguments loosely: any
//! positional argument is treated as a name filter (substring match),
//! and `--bench`/`--test` flags from `cargo bench` are ignored.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark runner.
#[derive(Debug, Clone)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "--bench" && a != "--test");
        Criterion {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            sample_size: 20,
            filter,
        }
    }
}

impl Criterion {
    /// Set the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Set the measurement duration budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Set the number of timed samples.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(name);
        self
    }

    /// Open a named benchmark group (settings are scoped to it).
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

/// A group of related benchmarks with its own settings.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        let saved = self.parent.sample_size;
        if let Some(n) = self.sample_size {
            self.parent.sample_size = n;
        }
        self.parent.bench_function(&full, f);
        self.parent.sample_size = saved;
        self
    }

    /// Finish the group (a no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; runs and times the workload.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `routine`, discarding its output.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget is spent.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        // Choose an iteration count per sample so one sample is at
        // least ~1ms and the whole measurement fits the budget.
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let iters_per_sample = ((0.001 / per_iter.max(1e-9)).ceil() as u64).max(1);
        let budget_end = Instant::now() + self.measurement;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters_per_sample as u32);
            if Instant::now() > budget_end {
                break;
            }
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let min = self.samples.iter().min().unwrap();
        let max = self.samples.iter().max().unwrap();
        let mean = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        println!(
            "{name:<40} time: [{} {} {}]",
            format_duration(*min),
            format_duration(mean),
            format_duration(*max),
        );
    }
}

/// Render a duration with criterion-like units.
pub fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Define a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20))
            .sample_size(5);
        c.filter = None;
        let mut calls = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn groups_scope_sample_size() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
            .sample_size(7);
        c.filter = None;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2);
            g.bench_function("inner", |b| b.iter(|| 1 + 1));
            g.finish();
        }
        assert_eq!(c.sample_size, 7, "group settings must not leak");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(format_duration(Duration::from_micros(1500)), "1.50 ms");
    }
}
