//! Generator for the regex subset used as string strategies.
//!
//! Supported syntax: literal characters, `\`-escapes (`\n`, `\t`,
//! `\r`, `\\`, and escaped metacharacters), character classes
//! (`[a-z0-9_.-]`, ranges and literals, `-` literal when first/last),
//! and the quantifiers `{n}`, `{m,n}`, `?`, `*`, `+` (the unbounded
//! ones cap at 8 repetitions). No alternation, grouping, or negated
//! classes — the workspace's strategies don't use them.

use rand::rngs::StdRng;
use rand::RngExt;

/// A compiled pattern.
#[derive(Debug, Clone)]
pub struct Pattern {
    atoms: Vec<(Atom, Repeat)>,
}

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    /// Inclusive character ranges (single chars are degenerate ranges).
    Class(Vec<(char, char)>),
}

#[derive(Debug, Clone, Copy)]
struct Repeat {
    min: u32,
    max: u32, // inclusive
}

const UNBOUNDED_CAP: u32 = 8;

impl Pattern {
    /// Compile a pattern, rejecting syntax outside the subset.
    pub fn compile(pattern: &str) -> Result<Pattern, String> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    let (class, next) = parse_class(&chars, i + 1)?;
                    i = next;
                    class
                }
                '\\' => {
                    i += 1;
                    let c = *chars.get(i).ok_or("dangling escape")?;
                    i += 1;
                    Atom::Literal(unescape(c))
                }
                '(' | ')' | '|' | '^' | '$' => {
                    return Err(format!("unsupported metacharacter `{}`", chars[i]));
                }
                '.' => {
                    i += 1;
                    // `.` — any printable ASCII.
                    Atom::Class(vec![(' ', '~')])
                }
                c => {
                    i += 1;
                    Atom::Literal(c)
                }
            };
            let repeat = match chars.get(i) {
                Some('{') => {
                    let (rep, next) = parse_braces(&chars, i + 1)?;
                    i = next;
                    rep
                }
                Some('?') => {
                    i += 1;
                    Repeat { min: 0, max: 1 }
                }
                Some('*') => {
                    i += 1;
                    Repeat {
                        min: 0,
                        max: UNBOUNDED_CAP,
                    }
                }
                Some('+') => {
                    i += 1;
                    Repeat {
                        min: 1,
                        max: UNBOUNDED_CAP,
                    }
                }
                _ => Repeat { min: 1, max: 1 },
            };
            atoms.push((atom, repeat));
        }
        Ok(Pattern { atoms })
    }

    /// Generate one string matching the pattern.
    pub fn generate(&self, rng: &mut StdRng) -> String {
        let mut out = String::new();
        for (atom, repeat) in &self.atoms {
            let n = if repeat.max > repeat.min {
                rng.random_range(repeat.min..repeat.max + 1)
            } else {
                repeat.min
            };
            for _ in 0..n {
                match atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(ranges) => out.push(sample_class(rng, ranges)),
                }
            }
        }
        out
    }
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    }
}

/// Parse a character class body starting after `[`; returns the atom
/// and the index just past the closing `]`.
fn parse_class(chars: &[char], mut i: usize) -> Result<(Atom, usize), String> {
    let mut ranges = Vec::new();
    if chars.get(i) == Some(&'^') {
        return Err("negated classes are not supported".into());
    }
    while let Some(&c) = chars.get(i) {
        if c == ']' {
            if ranges.is_empty() {
                return Err("empty character class".into());
            }
            return Ok((Atom::Class(ranges), i + 1));
        }
        let lo = if c == '\\' {
            i += 1;
            unescape(*chars.get(i).ok_or("dangling escape in class")?)
        } else {
            c
        };
        i += 1;
        // A `-` forms a range unless it is the last char before `]`.
        if chars.get(i) == Some(&'-') && chars.get(i + 1).is_some_and(|&n| n != ']') {
            i += 1;
            let hc = chars[i];
            let hi = if hc == '\\' {
                i += 1;
                unescape(*chars.get(i).ok_or("dangling escape in class")?)
            } else {
                hc
            };
            i += 1;
            if hi < lo {
                return Err(format!("inverted range `{lo}-{hi}`"));
            }
            ranges.push((lo, hi));
        } else {
            ranges.push((lo, lo));
        }
    }
    Err("unterminated character class".into())
}

/// Parse `{n}` / `{m,n}` starting after `{`; returns the repeat and the
/// index just past the closing `}`.
fn parse_braces(chars: &[char], mut i: usize) -> Result<(Repeat, usize), String> {
    let mut first = String::new();
    while chars.get(i).is_some_and(|c| c.is_ascii_digit()) {
        first.push(chars[i]);
        i += 1;
    }
    let min: u32 = first.parse().map_err(|_| "bad repeat count")?;
    match chars.get(i) {
        Some('}') => Ok((Repeat { min, max: min }, i + 1)),
        Some(',') => {
            i += 1;
            let mut second = String::new();
            while chars.get(i).is_some_and(|c| c.is_ascii_digit()) {
                second.push(chars[i]);
                i += 1;
            }
            if chars.get(i) != Some(&'}') {
                return Err("unterminated repeat".into());
            }
            let max: u32 = if second.is_empty() {
                min.max(UNBOUNDED_CAP)
            } else {
                second.parse().map_err(|_| "bad repeat count")?
            };
            if max < min {
                return Err("inverted repeat range".into());
            }
            Ok((Repeat { min, max }, i + 1))
        }
        _ => Err("unterminated repeat".into()),
    }
}

fn sample_class(rng: &mut StdRng, ranges: &[(char, char)]) -> char {
    // Weight ranges by their width so the class is uniform.
    let total: u32 = ranges
        .iter()
        .map(|(lo, hi)| *hi as u32 - *lo as u32 + 1)
        .sum();
    let mut pick = rng.random_range(0u32..total);
    for (lo, hi) in ranges {
        let width = *hi as u32 - *lo as u32 + 1;
        if pick < width {
            return char::from_u32(*lo as u32 + pick).expect("class ranges are valid chars");
        }
        pick -= width;
    }
    unreachable!("pick is bounded by the total width")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gen(pattern: &str, seed: u64) -> String {
        Pattern::compile(pattern)
            .unwrap()
            .generate(&mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn literals_and_classes() {
        assert_eq!(gen("abc", 1), "abc");
        for seed in 0..50 {
            let s = gen("[a-z][a-z0-9-]{0,8}", seed);
            assert!((1..=9).contains(&s.len()), "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));
        }
    }

    #[test]
    fn printable_space_class() {
        for seed in 0..20 {
            let s = gen("[ -~\n]{0,300}", seed);
            assert!(s.len() <= 300);
            assert!(
                s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)),
                "{s:?}"
            );
        }
    }

    #[test]
    fn quantifiers() {
        assert_eq!(gen("a{3}", 9), "aaa");
        for seed in 0..20 {
            let s = gen("a?b+", seed);
            assert!(s.trim_start_matches('a').chars().all(|c| c == 'b'));
            assert!(s.contains('b'));
        }
    }

    #[test]
    fn class_with_dot_and_underscore() {
        for seed in 0..20 {
            let s = gen("[a-zA-Z0-9_.-]{1,10}", seed);
            assert!(!s.is_empty() && s.len() <= 10);
            assert!(
                s.chars()
                    .all(|c| c.is_ascii_alphanumeric() || "_.-".contains(c)),
                "{s:?}"
            );
        }
    }

    #[test]
    fn rejects_unsupported() {
        assert!(Pattern::compile("(a|b)").is_err());
        assert!(Pattern::compile("[^a]").is_err());
        assert!(Pattern::compile("[a").is_err());
    }
}
