//! The `Strategy` trait and the primitive strategies.

use crate::pattern::Pattern;
use rand::rngs::StdRng;
use rand::{RngExt, UniformInt};
use std::fmt::Debug;
use std::ops::Range;

/// A recipe for generating values of a type.
pub trait Strategy {
    /// The generated value type.
    type Value: Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values with a function.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy always producing a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// `any::<T>()` — the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// The result of [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Debug + Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.random::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.random::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.random()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.random()
    }
}

/// Integer ranges are strategies (`0u64..100`).
impl<T> Strategy for Range<T>
where
    T: UniformInt + Debug,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.start..self.end)
    }
}

/// Pattern strings are strategies (`"[a-z]{1,8}"`).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        // Compile lazily each call; patterns are tiny and tests are not
        // perf-critical. Panic on malformed patterns, like proptest.
        Pattern::compile(self)
            .unwrap_or_else(|e| panic!("invalid pattern strategy {self:?}: {e}"))
            .generate(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}
