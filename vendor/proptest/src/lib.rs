//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the proptest surface its property tests use: the
//! [`Strategy`] trait with `prop_map`, `any::<T>()`, range and
//! pattern-string strategies, `prop::collection::{vec, btree_set}`,
//! `prop::sample::select`, `prop::option::of`, the [`proptest!`] macro
//! (with optional `#![proptest_config(..)]`), and
//! `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from real proptest, deliberately accepted:
//! - no shrinking — a failing case reports its inputs and panics;
//! - the RNG is seeded deterministically from the test name, so runs
//!   are reproducible (use `PROPTEST_CASES` to change the case count);
//! - string strategies support the regex subset the workspace uses:
//!   literals, escapes, character classes with ranges, and `{m,n}` /
//!   `{n}` / `?` / `*` / `+` quantifiers.

pub mod pattern;
pub mod strategy;

pub use strategy::{any, Strategy};

/// Runner configuration (`ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// Test-runner support used by the generated tests.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Deterministic RNG for a named property test.
    pub fn rng_for(test_name: &str) -> StdRng {
        // FNV-1a over the name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        StdRng::seed_from_u64(h)
    }
}

/// The prelude every property test imports.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy producing `Vec`s of `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy producing `BTreeSet`s (sizes are best-effort: duplicate
    /// draws collapse, as in real proptest).
    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = sample_size(rng, &self.size);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = sample_size(rng, &self.size);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    fn sample_size(rng: &mut StdRng, size: &Range<usize>) -> usize {
        if size.end <= size.start {
            size.start
        } else {
            rng.random_range(size.start..size.end)
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// Strategy drawing uniformly from a fixed list of options.
    pub fn select<T: Clone + std::fmt::Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone + std::fmt::Debug> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            self.options[rng.random_range(0..self.options.len())].clone()
        }
    }
}

/// Option strategies (`prop::option`).
pub mod option {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// Strategy producing `Some` three times out of four (as real
    /// proptest's default weighting).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            if rng.random_range(0u32..4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Assert a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+);
    };
}

/// Define property tests.
///
/// Supports the forms the workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]  // optional
///
///     /// Doc comment.
///     #[test]
///     fn my_property(x in 0u64..10, s in "[a-z]{1,3}") {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($config:expr); ) => {};
    (config = ($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __rng = $crate::test_runner::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let __values = ($($crate::Strategy::generate(&($strat), &mut __rng),)+);
                let __values_dbg = format!("{:?}", __values);
                let ($($arg,)+) = __values;
                let __result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    move || $body
                ));
                if let Err(__panic) = __result {
                    eprintln!(
                        "proptest case {}/{} of `{}` failed with inputs {}",
                        __case + 1,
                        __config.cases,
                        stringify!($name),
                        __values_dbg,
                    );
                    ::std::panic::resume_unwind(__panic);
                }
            }
        }
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_and_patterns(x in 1u64..100, s in "[a-z]{2,5}", b in any::<bool>()) {
            prop_assert!((1..100).contains(&x));
            prop_assert!((2..=5).contains(&s.len()), "bad len: {s:?}");
            prop_assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
            let _ = b;
        }

        #[test]
        fn collections_compose(
            v in prop::collection::vec((0i32..10).prop_map(|i| i * 2), 1..4),
            o in prop::option::of(prop::sample::select(vec!["a", "b"])),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(v.iter().all(|x| x % 2 == 0));
            if let Some(s) = o {
                prop_assert!(s == "a" || s == "b");
            }
        }
    }
}
