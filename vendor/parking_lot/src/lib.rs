//! Offline stand-in for [`parking_lot`](https://crates.io/crates/parking_lot).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *API surface it actually uses* — `Mutex` and `RwLock`
//! without lock poisoning — backed by `std::sync`. A poisoned std lock
//! (a thread panicked while holding it) is recovered into the inner
//! guard, matching parking_lot's no-poisoning semantics.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new rwlock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
