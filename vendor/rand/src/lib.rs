//! Offline stand-in for [`rand`](https://crates.io/crates/rand).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the API surface it actually uses: a seedable `StdRng`
//! (`rngs::StdRng` + `SeedableRng::seed_from_u64`) and the `RngExt`
//! extension trait with `random::<T>()` and `random_range(..)`.
//!
//! The generator is xoshiro256++ seeded through splitmix64 — fully
//! deterministic for a given seed, which is what the workspace relies
//! on (every stochastic choice in the simulation is keyed by an
//! explicit seed). The streams differ from crates.io `rand`'s StdRng
//! (ChaCha12); nothing in the workspace depends on the exact stream,
//! only on determinism and reasonable statistical quality.

/// Construction of seedable generators.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    impl StdRng {
        /// Advance the state and return 64 fresh bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, the reference seeding for xoshiro.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }
}

/// Types that can be drawn uniformly from the full value domain.
pub trait Standard: Sized {
    /// Draw one value.
    fn draw(rng: &mut rngs::StdRng) -> Self;
}

impl Standard for u64 {
    fn draw(rng: &mut rngs::StdRng) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw(rng: &mut rngs::StdRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn draw(rng: &mut rngs::StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn draw(rng: &mut rngs::StdRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw(rng: &mut rngs::StdRng) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Integers that `random_range` can sample uniformly from a `Range`.
pub trait UniformInt: Copy + PartialOrd {
    /// Sample uniformly from `[lo, hi)`; `hi > lo` must hold.
    fn sample_range(rng: &mut rngs::StdRng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_range(rng: &mut rngs::StdRng, lo: Self, hi: Self) -> Self {
                debug_assert!(hi > lo, "random_range requires a non-empty range");
                let span = (hi - lo) as u64;
                // Debiased multiply-shift (Lemire): uniform in [0, span).
                let mut x = rng.next_u64();
                let mut m = (x as u128) * (span as u128);
                let mut l = m as u64;
                if l < span {
                    let t = span.wrapping_neg() % span;
                    while l < t {
                        x = rng.next_u64();
                        m = (x as u128) * (span as u128);
                        l = m as u64;
                    }
                }
                lo + ((m >> 64) as u64) as $t
            }
        }
    )*};
}

impl_uniform_unsigned!(u64, usize, u32, u16, u8);

macro_rules! impl_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_range(rng: &mut rngs::StdRng, lo: Self, hi: Self) -> Self {
                debug_assert!(hi > lo, "random_range requires a non-empty range");
                let span = (hi as i128 - lo as i128) as u64;
                let off = <u64 as UniformInt>::sample_range(rng, 0, span);
                ((lo as i128) + off as i128) as $t
            }
        }
    )*};
}

impl_uniform_signed!(i64 => u64, i32 => u32, i16 => u16, i8 => u8, isize => usize);

/// Extension methods on random generators (mirrors `rand::Rng`).
pub trait RngExt {
    /// Draw a value of type `T` from its standard distribution.
    fn random<T: Standard>(&mut self) -> T;
    /// Draw uniformly from a half-open integer range.
    fn random_range<T: UniformInt>(&mut self, range: std::ops::Range<T>) -> T;
    /// Bernoulli draw with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool;
}

impl RngExt for rngs::StdRng {
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    fn random_range<T: UniformInt>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            let u = rng.random_range(10u64..20);
            assert!((10..20).contains(&u));
            let i = rng.random_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn rates_are_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.random::<f64>() < 0.25).count();
        assert!((2200..2800).contains(&hits), "got {hits}");
    }
}
