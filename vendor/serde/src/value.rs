//! The owned value tree both traits go through.

/// A JSON-shaped value tree.
///
/// Maps preserve insertion order (struct field order, map iteration
/// order) so that serialized output is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Signed integer (all Rust signed ints widen to this).
    I64(i64),
    /// Unsigned integer (u64/usize that exceed `i64::MAX` stay here).
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Ordered key-value map.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Human-readable kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }

    /// Look up a map entry by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `i128` if it is any integer.
    pub fn as_int(&self) -> Option<i128> {
        match self {
            Value::I64(i) => Some(*i as i128),
            Value::U64(u) => Some(*u as i128),
            _ => None,
        }
    }

    /// The value as an `f64` if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(f) => Some(*f),
            Value::I64(i) => Some(*i as f64),
            Value::U64(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}
