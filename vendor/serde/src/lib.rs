//! Offline stand-in for [`serde`](https://crates.io/crates/serde).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the serde surface it actually uses: `Serialize` and
//! `Deserialize` traits, `#[derive(Serialize, Deserialize)]` (via the
//! sibling `serde_derive` shim), and the `#[serde(rename = "...")]`
//! field attribute. Instead of serde's visitor architecture, both
//! traits go through an owned [`Value`] tree; `serde_json` (also
//! vendored) prints and parses that tree.
//!
//! Data-model conventions match serde's JSON behaviour where the
//! workspace can observe them:
//! - structs are maps in field-declaration order;
//! - newtype structs are transparent;
//! - enums are externally tagged (`"Variant"` /
//!   `{"Variant": payload}`);
//! - missing `Option` fields deserialize to `None`;
//! - map keys that serialize to strings/integers become JSON object
//!   keys; maps with structured keys serialize as arrays of
//!   `[key, value]` pairs (plain serde_json rejects those outright —
//!   accepting them is a strict superset this workspace relies on for
//!   crawl-database exports).

mod error;
mod impls;
mod value;

pub use error::Error;
pub use value::Value;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Types that can be turned into a [`Value`] tree.
pub trait Serialize {
    /// Serialize `self` into an owned value tree.
    fn serialize_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserialize from a value tree.
    fn deserialize_value(v: &Value) -> Result<Self, Error>;

    /// The value to use when a struct field is absent from the map
    /// (`Option` fields default to `None`, everything else errors).
    fn absent() -> Option<Self> {
        None
    }
}

/// Support functions for `serde_derive`-generated code. Not public API.
#[doc(hidden)]
pub mod __private {
    use super::{Deserialize, Error, Value};

    /// Look up a struct field by (possibly renamed) key.
    pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
        match v {
            Value::Map(entries) => match entries.iter().find(|(k, _)| k == name) {
                Some((_, fv)) => T::deserialize_value(fv),
                None => T::absent().ok_or_else(|| Error::new(format!("missing field `{name}`"))),
            },
            other => Err(Error::new(format!(
                "expected map for struct field `{name}`, got {}",
                other.kind()
            ))),
        }
    }

    /// Look up a positional element of a tuple struct/variant.
    pub fn elem<T: Deserialize>(seq: &[Value], idx: usize) -> Result<T, Error> {
        match seq.get(idx) {
            Some(v) => T::deserialize_value(v),
            None => Err(Error::new(format!("missing tuple element {idx}"))),
        }
    }

    /// Interpret a value as a sequence of exactly `n` elements.
    pub fn tuple_payload(v: &Value, n: usize) -> Result<&[Value], Error> {
        match v {
            Value::Seq(items) if items.len() == n => Ok(items),
            Value::Seq(items) => Err(Error::new(format!(
                "expected {n}-element tuple, got {} elements",
                items.len()
            ))),
            other => Err(Error::new(format!(
                "expected sequence, got {}",
                other.kind()
            ))),
        }
    }

    /// Decompose an externally tagged enum value into `(tag, payload)`.
    /// Unit variants arrive as a bare string and yield a `Null` payload.
    pub fn enum_parts(v: &Value) -> Result<(&str, &Value), Error> {
        static NULL: Value = Value::Null;
        match v {
            Value::Str(s) => Ok((s.as_str(), &NULL)),
            Value::Map(entries) if entries.len() == 1 => Ok((entries[0].0.as_str(), &entries[0].1)),
            other => Err(Error::new(format!(
                "expected externally tagged enum, got {}",
                other.kind()
            ))),
        }
    }
}
