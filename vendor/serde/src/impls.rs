//! `Serialize`/`Deserialize` implementations for std types.

use crate::{Deserialize, Error, Serialize, Value};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::hash::Hash;

// ---------------------------------------------------------------- integers

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let i = v
                    .as_int()
                    .ok_or_else(|| Error::new(format!("expected integer, got {}", v.kind())))?;
                <$t>::try_from(i).map_err(|_| {
                    Error::new(format!("integer {i} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let i = v
                    .as_int()
                    .ok_or_else(|| Error::new(format!("expected integer, got {}", v.kind())))?;
                <$t>::try_from(i).map_err(|_| {
                    Error::new(format!("integer {i} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

// ------------------------------------------------------------------ floats

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                v.as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| Error::new(format!("expected number, got {}", v.kind())))
            }
        }
    )*};
}

impl_float!(f32, f64);

// ------------------------------------------------------------ bool, char

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!("expected bool, got {}", other.kind()))),
        }
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        let s = v
            .as_str()
            .ok_or_else(|| Error::new(format!("expected string, got {}", v.kind())))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::new("expected single-character string")),
        }
    }
}

// ----------------------------------------------------------------- strings

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::new(format!("expected string, got {}", v.kind())))
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

// ---------------------------------------------------------------- pointers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        T::deserialize_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl Deserialize for std::sync::Arc<str> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(std::sync::Arc::from)
            .ok_or_else(|| Error::new(format!("expected string, got {}", v.kind())))
    }
}

// ------------------------------------------------------------------ option

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(inner) => inner.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }

    fn absent() -> Option<Self> {
        Some(None)
    }
}

// --------------------------------------------------------------- sequences

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        self.as_slice().serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(Error::new(format!(
                "expected sequence, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        Vec::<T>::deserialize_value(v).map(VecDeque::from)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        self.as_slice().serialize_value()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::deserialize_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::new(format!("expected {N}-element array, got {len}")))
    }
}

// ------------------------------------------------------------------ tuples

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+) with $n:expr;)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.serialize_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let items = crate::__private::tuple_payload(v, $n)?;
                Ok(($($name::deserialize_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0) with 1;
    (A.0, B.1) with 2;
    (A.0, B.1, C.2) with 3;
    (A.0, B.1, C.2, D.3) with 4;
}

// -------------------------------------------------------------------- sets

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        Vec::<T>::deserialize_value(v).map(BTreeSet::from_iter)
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn serialize_value(&self) -> Value {
        // Sort by the serialized form so output is deterministic even
        // though hash iteration order is not.
        let mut items: Vec<Value> = self.iter().map(Serialize::serialize_value).collect();
        items.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        Value::Seq(items)
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        Vec::<T>::deserialize_value(v).map(HashSet::from_iter)
    }
}

// -------------------------------------------------------------------- maps

/// Map keys that can act as JSON object keys.
///
/// serde_json requires string (or integer, via itoa) keys; structured
/// keys fail there. This shim keeps string/integer keys as object keys
/// and transparently falls back to an array-of-pairs encoding for
/// anything else (see crate docs).
fn key_to_string(v: &Value) -> Option<String> {
    match v {
        Value::Str(s) => Some(s.clone()),
        Value::I64(i) => Some(i.to_string()),
        Value::U64(u) => Some(u.to_string()),
        _ => None,
    }
}

fn serialize_map<'a, K, V, I>(entries: I) -> Value
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    let pairs: Vec<(Value, Value)> = entries
        .map(|(k, v)| (k.serialize_value(), v.serialize_value()))
        .collect();
    if pairs
        .iter()
        .all(|(k, _)| matches!(k, Value::Str(_) | Value::I64(_) | Value::U64(_)))
    {
        Value::Map(
            pairs
                .into_iter()
                .map(|(k, v)| (key_to_string(&k).expect("checked stringy"), v))
                .collect(),
        )
    } else {
        Value::Seq(
            pairs
                .into_iter()
                .map(|(k, v)| Value::Seq(vec![k, v]))
                .collect(),
        )
    }
}

fn deserialize_map_entries<K: Deserialize, V: Deserialize>(
    v: &Value,
) -> Result<Vec<(K, V)>, Error> {
    match v {
        Value::Map(entries) => entries
            .iter()
            .map(|(k, val)| {
                let key_value = Value::Str(k.clone());
                // Integer keys round-trip through their string form.
                let k = K::deserialize_value(&key_value).or_else(|_| {
                    let parsed = k
                        .parse::<i128>()
                        .map_err(|_| Error::new(format!("unparseable map key `{k}`")))?;
                    let int_value = if parsed < 0 {
                        Value::I64(parsed as i64)
                    } else {
                        Value::U64(parsed as u64)
                    };
                    K::deserialize_value(&int_value)
                })?;
                Ok((k, V::deserialize_value(val)?))
            })
            .collect(),
        Value::Seq(items) => items
            .iter()
            .map(|pair| {
                let kv = crate::__private::tuple_payload(pair, 2)?;
                Ok((K::deserialize_value(&kv[0])?, V::deserialize_value(&kv[1])?))
            })
            .collect(),
        other => Err(Error::new(format!("expected map, got {}", other.kind()))),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize_value(&self) -> Value {
        serialize_map(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        deserialize_map_entries(v).map(BTreeMap::from_iter)
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize_value(&self) -> Value {
        // Deterministic output: iterate in key order.
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        serialize_map(entries.into_iter())
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        deserialize_map_entries(v).map(HashMap::from_iter)
    }
}

// -------------------------------------------------------------------- unit

impl Serialize for () {
    fn serialize_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            other => Err(Error::new(format!("expected null, got {}", other.kind()))),
        }
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
