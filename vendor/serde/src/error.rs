//! Deserialization error type.

use std::fmt;

/// Error produced when a value tree does not match the target type.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    /// Create an error with a message.
    pub fn new(message: impl Into<String>) -> Error {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}
